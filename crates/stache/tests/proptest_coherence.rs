//! Property-based coherence torture: random phase-structured access
//! programs run on a live machine must always observe the values a simple
//! sequential memory model predicts.
//!
//! Programs are sequences of *phases* (barrier-separated), each phase
//! either a write round (each address written by at most one node) or a
//! read round (arbitrary nodes read arbitrary addresses) — the
//! data-parallel discipline under which sequential consistency makes the
//! outcome deterministic.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_stache::{fetch, spawn_protocol, Msg, NoHooks, NodeShared, RetryConfig, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{CostModel, FaultPlan, GAddr, GlobalLayout, NodeId, Prim, VBarrier};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Phase {
    /// `(address index, writer node, value)` — distinct address indices.
    Writes(Vec<(usize, NodeId, u64)>),
    /// `(address index, reader node)`.
    Reads(Vec<(usize, NodeId)>),
}

fn phase_strategy(n_addrs: usize, nodes: u16) -> impl Strategy<Value = Phase> {
    let writes = proptest::collection::btree_map(0..n_addrs, (0..nodes, any::<u64>()), 1..6)
        .prop_map(|m| Phase::Writes(m.into_iter().map(|(a, (w, v))| (a, w, v)).collect()));
    let reads = proptest::collection::vec((0..n_addrs, 0..nodes), 1..10).prop_map(Phase::Reads);
    prop_oneof![writes, reads]
}

struct TestNode {
    shared: Arc<NodeShared>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
}

fn build_machine(
    nodes: usize,
    block_size: usize,
    plan: Option<FaultPlan>,
) -> (Vec<TestNode>, Vec<JoinHandle<()>>) {
    let layout = GlobalLayout::new(nodes, block_size);
    let eps = match plan {
        Some(p) if p.is_active() => Fabric::new_faulty::<Msg>(nodes, p).0,
        _ => Fabric::new::<Msg>(nodes),
    };
    // Short wall-clock retry timeout so dropped/stalled messages are
    // re-issued quickly under fault injection.
    let retry = RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 };
    let mut tns = Vec::new();
    let mut joins = Vec::new();
    for ep in eps {
        let (wake_tx, wake_rx) = unbounded();
        let shared = Arc::new(NodeShared::new_with_retry(
            layout,
            CostModel::default(),
            ep.net().clone(),
            wake_tx,
            retry,
        ));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)));
        tns.push(TestNode { shared, wake_rx, stash: Vec::new() });
    }
    (tns, joins)
}

fn run_torture(nodes: usize, block_size: usize, phases: Vec<Phase>) {
    run_torture_faulty(nodes, block_size, phases, None);
}

fn run_torture_faulty(
    nodes: usize,
    block_size: usize,
    phases: Vec<Phase>,
    plan: Option<FaultPlan>,
) {
    let (mut tns, _joins) = build_machine(nodes, block_size, plan);

    // Address pool: a few addresses homed on every node, some sharing
    // blocks (consecutive words) to exercise false sharing.
    let mut addrs: Vec<GAddr> = Vec::new();
    for tn in &tns {
        let base = tn.shared.mem.lock().alloc(8 * 4, 8);
        for k in 0..4 {
            addrs.push(base.add(8 * k));
        }
    }
    let n_addrs = addrs.len();
    let addrs = Arc::new(addrs);

    // Sequential model.
    let mut model = vec![0u64; n_addrs];

    let barrier = Arc::new(VBarrier::new(nodes));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Precompute each phase clamped to the address pool.
    let phases: Vec<Phase> = phases
        .into_iter()
        .map(|p| match p {
            Phase::Writes(ws) => {
                Phase::Writes(ws.into_iter().map(|(a, w, v)| (a % n_addrs, w, v)).collect())
            }
            Phase::Reads(rs) => {
                Phase::Reads(rs.into_iter().map(|(a, r)| (a % n_addrs, r)).collect())
            }
        })
        .collect();

    // Expected values after each phase, for the readers to check.
    let mut expects: Vec<Vec<u64>> = Vec::with_capacity(phases.len());
    for p in &phases {
        if let Phase::Writes(ws) = p {
            for &(a, _, v) in ws {
                model[a] = v;
            }
        }
        expects.push(model.clone());
    }
    let phases = Arc::new(phases);
    let expects = Arc::new(expects);

    std::thread::scope(|scope| {
        for tn in tns.iter_mut() {
            let me = tn.shared.me;
            let phases = Arc::clone(&phases);
            let expects = Arc::clone(&expects);
            let addrs = Arc::clone(&addrs);
            let barrier = Arc::clone(&barrier);
            let failures = Arc::clone(&failures);
            let shared = Arc::clone(&tn.shared);
            let wake_rx = tn.wake_rx.clone();
            scope.spawn(move || {
                let mut stash = Vec::new();
                for (pi, phase) in phases.iter().enumerate() {
                    match phase {
                        Phase::Writes(ws) => {
                            for &(a, w, v) in ws {
                                if w == me {
                                    let mut buf = [0u8; 8];
                                    v.store(&mut buf);
                                    loop {
                                        let r = shared.mem.lock().write_in_block(addrs[a], &buf);
                                        match r {
                                            Ok(()) => break,
                                            Err(f) => {
                                                fetch(&shared, &wake_rx, f.fault().block, true, &mut stash);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        Phase::Reads(rs) => {
                            for &(a, r) in rs {
                                if r == me {
                                    let mut buf = [0u8; 8];
                                    loop {
                                        let res = shared.mem.lock().read_in_block(addrs[a], &mut buf);
                                        match res {
                                            Ok(()) => break,
                                            Err(f) => {
                                                fetch(&shared, &wake_rx, f.fault().block, false, &mut stash);
                                            }
                                        }
                                    }
                                    let got = u64::load(&buf);
                                    let want = expects[pi][a];
                                    if got != want {
                                        failures.lock().push(format!(
                                            "phase {pi}: node {me} read addr[{a}] = {got}, expected {want}"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    barrier.wait(0);
                }
            });
        }
    });

    // With every compute thread done, the machine is quiescent: all
    // coherence invariants must hold globally.
    let shareds: Vec<_> = tns.iter().map(|tn| Arc::clone(&tn.shared)).collect();
    let invariant_violations = prescient_stache::check_coherence(&shareds);

    for tn in &tns {
        tn.shared.send(tn.shared.me, Msg::Shutdown);
    }
    let fails = failures.lock();
    assert!(fails.is_empty(), "coherence violations: {:#?}", *fails);
    assert!(invariant_violations.is_empty(), "invariant violations: {invariant_violations:#?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn coherence_holds_under_random_phase_programs(
        phases in proptest::collection::vec(phase_strategy(12, 3), 1..14),
        block_size in prop_oneof![Just(32usize), Just(64), Just(128)],
    ) {
        run_torture(3, block_size, phases);
    }

    /// Duplicated delivery: every protocol message may arrive twice, in
    /// order. The (requester, seq) watermark, recall-round op ids, and
    /// epoch-stamped pre-sends must make all of them idempotent.
    #[test]
    fn coherence_holds_under_duplicated_delivery(
        phases in proptest::collection::vec(phase_strategy(12, 3), 1..10),
        seed in any::<u64>(),
        dup in 100u16..=1000,
    ) {
        run_torture_faulty(3, 32, phases, Some(FaultPlan::new(seed).duplicating(dup)));
    }

    /// Delayed (FIFO-preserving) delivery plus duplicates: stalled links
    /// release under later traffic and retries; values never diverge.
    #[test]
    fn coherence_holds_under_delayed_delivery(
        phases in proptest::collection::vec(phase_strategy(12, 3), 1..10),
        seed in any::<u64>(),
        delay in 50u16..400,
        max_delay in 1u32..4,
    ) {
        let plan = FaultPlan::new(seed).delaying(delay, max_delay).duplicating(60);
        run_torture_faulty(3, 32, phases, Some(plan));
    }
}

/// A regression-style deterministic case: interleaved writers and readers
/// with false sharing inside one block.
#[test]
fn deterministic_false_sharing_case() {
    let phases = vec![
        Phase::Writes(vec![(0, 0, 11), (1, 1, 22), (2, 2, 33)]),
        Phase::Reads(vec![(0, 2), (1, 0), (2, 1)]),
        Phase::Writes(vec![(0, 2, 44), (3, 0, 55)]),
        Phase::Reads(vec![(0, 0), (0, 1), (3, 2), (1, 2)]),
        Phase::Writes(vec![(1, 0, 66)]),
        Phase::Reads(vec![(1, 1), (0, 1)]),
    ];
    run_torture(3, 32, phases);
}

/// Pinned fault-injection case (regression seed): the same false-sharing
/// program with every message duplicated and links stalling — the shape
/// that exercises duplicate recalls against a busy directory entry.
#[test]
fn deterministic_false_sharing_case_under_faults() {
    let phases = vec![
        Phase::Writes(vec![(0, 0, 11), (1, 1, 22), (2, 2, 33)]),
        Phase::Reads(vec![(0, 2), (1, 0), (2, 1)]),
        Phase::Writes(vec![(0, 2, 44), (3, 0, 55)]),
        Phase::Reads(vec![(0, 0), (0, 1), (3, 2), (1, 2)]),
        Phase::Writes(vec![(1, 0, 66)]),
        Phase::Reads(vec![(1, 1), (0, 1)]),
    ];
    let plan = FaultPlan::new(0xC0FFEE).duplicating(1000).delaying(150, 3).dropping(60);
    run_torture_faulty(3, 32, phases, Some(plan));
}
