//! The per-node execution context inside an SPMD program.
//!
//! `NodeCtx` is each compute thread's handle on the machine. Every shared
//! access goes through the fine-grain access-control check; faults block
//! the thread on the protocol (remote data wait), exactly as in Blizzard.
//! The context keeps the node's virtual clock, split into the paper's bar
//! segments: compute, remote-data wait, predictive protocol (pre-send),
//! and synchronization.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use prescient_core::commute::merge as commute_merge;
use prescient_core::presend::presend;
use prescient_core::{Commute, PhaseId, Predictive};
use prescient_stache::engine::{fetch, run_migration_window};
use prescient_stache::{Hooks, Msg, NoHooks, NodeShared, Wake};
use prescient_tempest::stats::{StatsSnapshot, WireSnapshot};
use prescient_tempest::trace::{pack_counts, pack_fault_end, EventKind};
use prescient_tempest::{
    CostModel, CrashPlan, FabricCtl, GAddr, LatencyHist, MetricsHub, NodeId, NodeStats,
    PhaseRecord, Prim, TimeBreakdown, VBarrier,
};

use crate::machine::ReduceScratch;
use crate::recovery::{Checkpoint, CheckpointStore, RecoveryCtl};

/// How one execution of a phase ended, as reported by
/// [`NodeCtx::try_phase_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The phase's work is committed; proceed.
    Committed,
    /// A crash destroyed the phase's work; the machine has rolled back to
    /// the checkpoint taken at this phase's `phase_begin` and the caller
    /// must re-execute the phase body ([`NodeCtx::phase`] does).
    Replay,
}

/// What the machine hands each node to start its metrics series for one
/// run (see `crate::Machine`): the shared hub, the run ordinal, and the
/// node's counter baseline at run start — captured *before* the run's
/// placement-overlay bumps, so the first cut absorbs them.
pub(crate) struct MetricsInit {
    /// Machine-wide record sink.
    pub hub: Arc<MetricsHub>,
    /// 1-based `Machine::run` ordinal.
    pub run: u64,
    /// This node's cumulative counters at run start.
    pub baseline: StatsSnapshot,
    /// Fabric control handle — `Some` only on node 0, which records the
    /// fabric-global wire deltas on the whole machine's behalf.
    pub ctl: Option<Arc<FabricCtl>>,
    /// Wire counters at run start (meaningful with `ctl`).
    pub wire0: WireSnapshot,
}

/// One node's in-flight metrics series: everything needed to cut delta
/// records at phase boundaries. Compute-thread-local — no atomics, no
/// locks except the hub push.
struct MetricsState {
    hub: Arc<MetricsHub>,
    run: u64,
    /// Next record's per-node ordinal.
    seq: u64,
    /// Counter values at the previous cut; records are deltas against
    /// this, so per-node sums telescope exactly to the run report.
    last_stats: StatsSnapshot,
    last_vtime: TimeBreakdown,
    ctl: Option<Arc<FabricCtl>>,
    last_wire: WireSnapshot,
    /// Fetch latencies billed since the previous cut.
    fetch: LatencyHist,
    /// Per-phase-id iteration ordinals within this run.
    iters: HashMap<PhaseId, u64>,
    /// The phase currently open via `phase_begin`, with its iteration
    /// ordinal. Survives a crash replay (the replayed `phase_begin` cuts
    /// nothing), so a replayed phase yields exactly one record.
    open: Option<(PhaseId, u64)>,
}

impl MetricsState {
    fn new(init: MetricsInit) -> MetricsState {
        MetricsState {
            hub: init.hub,
            run: init.run,
            seq: 0,
            last_stats: init.baseline,
            last_vtime: TimeBreakdown::default(),
            ctl: init.ctl,
            last_wire: init.wire0,
            fetch: LatencyHist::default(),
            iters: HashMap::new(),
            open: None,
        }
    }
}

/// Per-node program context. One exists per compute thread per run.
pub struct NodeCtx {
    shared: Arc<NodeShared>,
    pred: Option<Arc<Predictive>>,
    commute: Option<Arc<Commute>>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
    barrier: Arc<VBarrier>,
    reduce: Arc<ReduceScratch>,
    reduce_round: u64,
    cost: CostModel,
    t: TimeBreakdown,
    /// Phase currently open via `phase_begin` (0 outside any phase);
    /// trace events are attributed to it.
    cur_phase: PhaseId,
    /// Crash/recovery coordination shared with every other node.
    recovery: Arc<RecoveryCtl>,
    /// The per-node checkpoint slots.
    ckpts: Arc<CheckpointStore>,
    /// Injected crash, if the machine runs one.
    crash: Option<CrashPlan>,
    /// Take a checkpoint at every `phase_begin`.
    checkpoints: bool,
    /// Phase-execution ordinal: how many `phase_begin`s this run has
    /// executed (the crash plan's `at_version` counts these).
    version: u64,
    /// Phase-granular metrics series (None = metrics off: no cuts, no
    /// cost beyond one never-taken branch per boundary).
    metrics: Option<MetricsState>,
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shared: Arc<NodeShared>,
        pred: Option<Arc<Predictive>>,
        commute: Option<Arc<Commute>>,
        wake_rx: Receiver<Wake>,
        barrier: Arc<VBarrier>,
        reduce: Arc<ReduceScratch>,
        recovery: Arc<RecoveryCtl>,
        ckpts: Arc<CheckpointStore>,
        crash: Option<CrashPlan>,
        checkpoints: bool,
        metrics: Option<MetricsInit>,
    ) -> NodeCtx {
        let cost = shared.cost;
        NodeCtx {
            metrics: metrics.map(MetricsState::new),
            shared,
            pred,
            commute,
            wake_rx,
            stash: Vec::new(),
            barrier,
            reduce,
            reduce_round: 0,
            cost,
            t: TimeBreakdown::default(),
            cur_phase: 0,
            recovery,
            ckpts,
            crash,
            checkpoints,
            version: 0,
        }
    }

    /// Publish the compute thread's virtual clock to the tracer and emit
    /// one event stamped with it. A no-op (one never-taken branch) when
    /// tracing is disabled.
    #[inline]
    fn trace(&self, kind: EventKind, a: u64, b: u64) {
        let tr = self.shared.tracer();
        if tr.on() {
            tr.set_vtime(self.t.total_ns());
            tr.emit(kind, a, b);
        }
    }

    /// Cut one metrics record: the deltas of everything since the
    /// previous cut, attributed to `(phase, iter)` (0, 0 for the gaps
    /// between phases). Costs relaxed loads plus a hub push; bills no
    /// virtual time and sends no messages, so the gated counters are
    /// unperturbed by construction. The protocol-handler thread keeps
    /// serving peers while the cut is read, so attribution is approximate
    /// at the margin — but consecutive cuts of the same cumulative
    /// counters telescope, so the per-node sums reconcile exactly with
    /// the run report whatever the races did.
    fn metrics_cut(&mut self, phase: PhaseId, iter: u64) {
        if self.metrics.is_none() {
            return;
        }
        let now_stats = self.shared.stats.snapshot();
        let now_vtime = self.t;
        let node = self.shared.me;
        let version = self.version;
        let m = self.metrics.as_mut().expect("metrics on");
        let wire = m.ctl.as_ref().map(|c| c.wire());
        let rec = PhaseRecord {
            node,
            seq: m.seq,
            run: m.run,
            phase,
            iter,
            version,
            vtime: now_vtime.sub(&m.last_vtime),
            stats: now_stats.sub(&m.last_stats),
            fetch: std::mem::take(&mut m.fetch),
            wire: wire.map(|w| w.sub(&m.last_wire)),
        };
        m.seq += 1;
        m.last_stats = now_stats;
        m.last_vtime = now_vtime;
        if let Some(w) = wire {
            m.last_wire = w;
        }
        m.hub.push(rec);
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.shared.me
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.shared.nodes()
    }

    /// Cache-block size in bytes.
    pub fn block_size(&self) -> usize {
        self.shared.block_size()
    }

    /// Is the predictive protocol active?
    pub fn is_predictive(&self) -> bool {
        self.pred.is_some()
    }

    /// Is the commutative-merge extension active?
    pub fn is_commutative(&self) -> bool {
        self.commute.is_some()
    }

    /// This node's virtual clock (ns since run start).
    pub fn now_ns(&self) -> u64 {
        self.t.total_ns()
    }

    /// The underlying predictive state (e.g. for manual schedules).
    pub fn predictive(&self) -> Option<&Arc<Predictive>> {
        self.pred.as_ref()
    }

    /// Direct access to the node's shared state (diagnostics, tests).
    pub fn node(&self) -> &Arc<NodeShared> {
        &self.shared
    }

    // ----- shared-memory access ------------------------------------------

    /// Read a primitive from shared memory (fine-grain checked; faults are
    /// serviced by the coherence protocol and billed as remote wait).
    pub fn read<T: Prim>(&mut self, addr: GAddr) -> T {
        NodeStats::bump(&self.shared.stats.reads);
        self.t.compute_ns += self.cost.local_access_ns;
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::BYTES];
        loop {
            // The first-touch probe runs under the same mem lock as the
            // access, so "unread pre-send copy consumed by this read" is
            // exact; it is skipped entirely when tracing is off.
            let (r, first_touch) = {
                let mut mem = self.shared.mem.lock();
                let ft = self.shared.tracer().on()
                    && mem.presend_unused(self.shared.layout.block_of(addr));
                (mem.read_in_block(addr, buf), ft)
            };
            match r {
                Ok(()) => {
                    if first_touch {
                        self.trace(
                            EventKind::PresendFirstTouch,
                            self.shared.layout.block_of(addr).0,
                            0,
                        );
                    }
                    return T::load(buf);
                }
                // `fault()` panics on a boundary-crossing access, which no
                // protocol action can repair (a runtime layout bug).
                Err(e) => self.miss(e.fault().block, false),
            }
        }
    }

    /// Write a primitive to shared memory.
    pub fn write<T: Prim>(&mut self, addr: GAddr, v: T) {
        NodeStats::bump(&self.shared.stats.writes);
        self.t.compute_ns += self.cost.local_access_ns;
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::BYTES];
        v.store(buf);
        loop {
            let (r, first_touch) = {
                let mut mem = self.shared.mem.lock();
                let ft = self.shared.tracer().on()
                    && mem.presend_unused(self.shared.layout.block_of(addr));
                (mem.write_in_block(addr, buf), ft)
            };
            match r {
                Ok(()) => {
                    if first_touch {
                        self.trace(
                            EventKind::PresendFirstTouch,
                            self.shared.layout.block_of(addr).0,
                            0,
                        );
                    }
                    return;
                }
                Err(e) => self.miss(e.fault().block, true),
            }
        }
    }

    fn miss(&mut self, block: prescient_tempest::BlockId, excl: bool) {
        self.trace(EventKind::FaultBegin, block.0, u64::from(excl));
        let info = fetch(&self.shared, &self.wake_rx, block, excl, &mut self.stash);
        if excl {
            NodeStats::bump(&self.shared.stats.write_misses);
        } else {
            NodeStats::bump(&self.shared.stats.read_misses);
        }
        if info.extra_hops > 0 {
            NodeStats::bump(&self.shared.stats.slow_misses);
        }
        let home = self.shared.layout.home_of_block(block);
        let mut wait = if home == self.me() {
            self.cost.local_fault_ns(info.extra_hops, info.bytes, info.recorded)
        } else {
            self.cost.miss_ns(info.extra_hops, info.bytes, info.recorded)
        };
        // Re-issued requests (lost or late replies on a faulty fabric) are
        // billed on top of the ordinary miss cost.
        wait += u64::from(info.retries) * self.cost.retry_ns;
        self.t.wait_ns += wait;
        if let Some(m) = self.metrics.as_mut() {
            // The exact wait billed, including retry penalties. Not rolled
            // back by crash recovery: unlike the stats (which must
            // reconcile with the run report), the histogram records work
            // that actually happened, replays included.
            m.fetch.record(wait);
        }
        self.trace(
            EventKind::FaultEnd,
            block.0,
            pack_fault_end(excl, info.extra_hops, info.retries),
        );
    }

    /// Charge `flops` units of application arithmetic to the virtual clock.
    pub fn work(&mut self, flops: u64) {
        self.t.compute_ns += flops * self.cost.flop_ns;
    }

    /// Allocate shared memory from this node's heap (homed here). Usable
    /// during phases — this is how Adaptive grows quad-trees and Barnes
    /// builds its local tree arenas.
    pub fn alloc_local(&mut self, bytes: u64, align: u64) -> GAddr {
        self.t.compute_ns += self.cost.local_access_ns;
        self.shared.mem.lock().alloc(bytes, align)
    }

    // ----- synchronization ------------------------------------------------

    /// Global barrier; the stall is billed as synchronization time.
    /// Barrier entry is a quiescence point: the node's egress buffers are
    /// flushed before blocking, so no message this thread produced can sit
    /// in a partial batch while every thread waits.
    pub fn barrier(&mut self) {
        self.shared.flush_net();
        self.trace(EventKind::BarrierEnter, 0, 0);
        let out = self.barrier.wait(self.t.total_ns());
        self.t.synch_ns += out.stall_ns + self.cost.barrier_ns;
        self.trace(EventKind::BarrierExit, out.stall_ns, 0);
    }

    /// Global barrier billed to the pre-send segment (used inside the
    /// predictive directives, whose whole cost the paper reports as
    /// "Predictive protocol").
    fn barrier_presend(&mut self) {
        self.shared.flush_net();
        self.trace(EventKind::BarrierEnter, 0, 0);
        let out = self.barrier.wait(self.t.total_ns());
        self.t.presend_ns += out.stall_ns + self.cost.barrier_ns;
        self.trace(EventKind::BarrierExit, out.stall_ns, 0);
    }

    // ----- compiler directives (§4.3) -------------------------------------

    /// `phase_begin(id)` — the compiler-inserted directive before a
    /// parallel phase with potentially repetitive communication: pre-send
    /// according to the phase's recorded schedule, synchronize so all block
    /// states are stable, then arm recording for this instance.
    ///
    /// Under plain Stache this is a no-op (the unoptimized program).
    pub fn phase_begin(&mut self, phase: PhaseId) {
        // Cut the inter-phase gap record before any of this directive's
        // work (migration window, checkpoint, pre-send) accrues, so all
        // of it lands in the phase's own record. A replayed begin (the
        // phase is still open after a crash rollback) cuts nothing: the
        // committed record then spans from the first attempt's begin to
        // the final commit, matching the stats-rollback arithmetic.
        if self.metrics.as_ref().is_some_and(|m| m.open.is_none()) {
            self.metrics_cut(0, 0);
            let m = self.metrics.as_mut().expect("metrics on");
            let it = m.iters.entry(phase).or_insert(0);
            let iter = *it;
            *it += 1;
            m.open = Some((phase, iter));
        }
        self.version += 1;
        self.migration_window();
        if self.checkpoints {
            self.take_checkpoint();
        }
        self.cur_phase = phase;
        self.shared.tracer().set_phase(phase);
        self.trace(EventKind::PhaseBegin, u64::from(phase), 0);
        let Some(pred) = self.pred.clone() else { return };
        self.barrier_presend();
        self.trace(EventKind::PresendStart, u64::from(phase), 0);
        let rep = presend(&pred, &self.shared, &self.wake_rx, &mut self.stash, phase);
        self.t.presend_ns += rep.vtime_ns;
        self.trace(EventKind::PresendEnd, u64::from(phase), rep.blocks_pushed);
        // Arm BEFORE the stability barrier: no compute thread can issue a
        // demand fetch while every node is still inside this directive, and
        // barrier exit then proves every home is recording — a consumer
        // that faults right after the barrier always gets recorded.
        pred.arm(phase);
        self.barrier_presend();
        // Epoch advance must follow the stability barrier: barrier exit
        // proves every node's pushes were acknowledged, so any push still
        // carrying the old epoch is a duplicate and can be rejected.
        pred.bump_epoch();
    }

    /// `phase_end()` — close the current parallel phase. Under plain
    /// Stache, just the phase's natural closing barrier; under the
    /// predictive protocol, additionally stop recording (between two
    /// barriers, so every in-phase request lands in the schedule and no
    /// post-phase request does).
    ///
    /// # Panics
    ///
    /// Panics if a crash destroyed this phase's work: the raw directive
    /// has no way to re-execute the body. Run crash-recovery machines
    /// through [`NodeCtx::phase`], which replays automatically.
    pub fn phase_end(&mut self) {
        if self.try_phase_end() == PhaseOutcome::Replay {
            panic!(
                "node {}: phase {} must be replayed after crash recovery, but it was closed \
                 with the raw phase_end() directive; execute recoverable phases through \
                 NodeCtx::phase(...) so the body can re-run",
                self.me(),
                self.cur_phase,
            );
        }
    }

    /// Close the current phase, reporting whether its work committed or a
    /// crash rolled the machine back ([`PhaseOutcome::Replay`] obliges the
    /// caller to re-execute the phase body; [`NodeCtx::phase`] wraps this).
    ///
    /// The injected crash fires here, at phase-end entry — the canonical
    /// worst case: the phase's compute is done but not yet committed by
    /// the closing barrier, so all of it is lost and must be replayed.
    pub fn try_phase_end(&mut self) -> PhaseOutcome {
        if let Some(plan) = self.crash {
            if plan.node == self.me()
                && plan.at_version == self.version
                && self.recovery.consume_crash()
            {
                self.trace(EventKind::Crash, u64::from(self.me()), self.version);
                assert!(
                    self.checkpoints,
                    "node {}: injected crash at phase version {} with checkpointing disabled \
                     (no checkpoint to recover to)",
                    self.me(),
                    self.version,
                );
                // Raise the flag *before* entering the closing barrier:
                // every node is guaranteed to observe it when it leaves.
                self.recovery.declare_crash(self.me());
            }
        }
        self.barrier();
        if self.recovery.crashed().is_some() {
            return self.recover();
        }
        if let Some(pred) = self.pred.clone() {
            pred.end_phase();
            self.barrier_presend();
        }
        // The phase committed: cut its record here, past every closing
        // barrier, so the record carries the phase's full protocol cost.
        if let Some((p, iter)) = self.metrics.as_mut().and_then(|m| m.open.take()) {
            self.metrics_cut(p, iter);
        }
        self.trace(EventKind::PhaseEnd, u64::from(self.cur_phase), 0);
        self.cur_phase = 0;
        self.shared.tracer().set_phase(0);
        PhaseOutcome::Committed
    }

    /// Execute one phase instance with automatic crash recovery: clones
    /// `state`, runs `phase_begin(id)` / `body` / the closing directive,
    /// and — if a crash rolled the machine back to this phase's checkpoint
    /// — restores `state` from the clone and re-executes the body, exactly
    /// re-creating the lost instance.
    ///
    /// `state` must carry everything the body mutates that lives *outside*
    /// shared memory (e.g. private velocity arrays); shared memory itself
    /// is rolled back by the checkpoint. Bodies must not call
    /// [`NodeCtx::allreduce_sum`] (reductions belong between phases, where
    /// no replay can re-run them).
    pub fn phase<S, F>(&mut self, phase: PhaseId, state: &mut S, mut body: F)
    where
        S: Clone,
        F: FnMut(&mut NodeCtx, &mut S),
    {
        loop {
            let saved = state.clone();
            self.phase_begin(phase);
            body(self, state);
            match self.try_phase_end() {
                PhaseOutcome::Committed => return,
                PhaseOutcome::Replay => *state = saved,
            }
        }
    }

    /// `merge_exchange(phase, outgoing)` — the `CommutativeMerge`
    /// directive: exchange privatized delta buffers at the phase barrier.
    /// Each `(owner, payload)` pair in `outgoing` is this node's encoded
    /// contribution toward `owner` (a payload addressed to this node
    /// itself is delivered locally without touching the fabric). Returns
    /// every payload addressed to this node, sorted by `(contributor,
    /// push id)` — a total order all runs agree on, so replaying the
    /// merged updates in the returned order is deterministic.
    ///
    /// The exchange is double-barriered like a pre-send window: the entry
    /// barrier proves every node finished its privatized compute (and
    /// advanced its merge epoch past the previous window) before any delta
    /// lands; the stability barrier proves every chunk is buffered at its
    /// owner before any node drains its inbox. Both stalls and the
    /// exchange itself are billed to the protocol (pre-send) bar segment.
    ///
    /// # Panics
    ///
    /// Panics unless the machine runs `ProtocolKind::Commutative` — the
    /// merge directive is a protocol mode, not an application feature.
    pub fn merge_exchange(
        &mut self,
        phase: PhaseId,
        outgoing: &[(NodeId, Vec<u8>)],
    ) -> Vec<(NodeId, Arc<[u8]>)> {
        let Some(cm) = self.commute.clone() else {
            panic!(
                "node {}: merge_exchange(phase {phase}) requires ProtocolKind::Commutative",
                self.me()
            )
        };
        self.trace(EventKind::MergeBegin, u64::from(phase), outgoing.len() as u64);
        self.barrier_presend();
        let rep = commute_merge(&cm, &self.shared, &self.wake_rx, &mut self.stash, outgoing);
        self.t.presend_ns += rep.vtime_ns;
        self.barrier_presend();
        let merged = cm.take_inbox();
        // Epoch advance must follow the stability barrier (the pre-send
        // argument): every chunk of this window is acknowledged, so
        // anything still carrying the old epoch is a duplicate.
        cm.bump_epoch();
        self.trace(
            EventKind::MergeEnd,
            u64::from(phase),
            pack_counts(rep.chunks_out, merged.len() as u64),
        );
        merged
    }

    /// The phase-boundary home-migration window (online placement,
    /// DESIGN.md §14). A no-op returning before any barrier when the
    /// machine runs without online placement — the compiled-in-but-
    /// disabled path adds zero synchronization and leaves every counter
    /// bit-identical. When enabled: barrier (every compute thread
    /// quiescent, every outstanding request answered), each node migrates
    /// the blocks it homes whose dominant consumer is remote, barrier
    /// (every handover acknowledged before any compute resumes).
    ///
    /// Ordered *before* the phase checkpoint so a crash in the upcoming
    /// phase rolls back to the post-migration cut: forwarding stubs, the
    /// moved directory entries and the cleared traffic counters all
    /// survive rollback, and the replay re-runs the phase against the
    /// migrated homes rather than re-deciding the window.
    fn migration_window(&mut self) {
        if self.shared.placement.is_none() {
            return;
        }
        self.barrier_presend();
        self.trace(EventKind::MigrateBegin, self.version, 0);
        let nohooks = NoHooks;
        let hooks: &dyn Hooks = if let Some(p) = &self.pred {
            p.as_ref()
        } else if let Some(c) = &self.commute {
            c.as_ref()
        } else {
            &nohooks
        };
        let (moved, bytes) =
            run_migration_window(&self.shared, hooks, &self.wake_rx, &mut self.stash);
        // Bill the handover like a push: one startup per moved block plus
        // the shipped bytes, on the protocol (pre-send) bar segment.
        self.t.presend_ns += moved * self.cost.msg_startup_ns + bytes * self.cost.per_byte_ns;
        self.trace(EventKind::MigrateEnd, moved, bytes);
        self.barrier_presend();
    }

    // ----- crash recovery (DESIGN.md §12) ---------------------------------

    /// A barrier used by the checkpoint/recovery machinery itself:
    /// rendezvous and flush like every barrier, but bill no virtual time —
    /// recovery is a fault-tolerance artifact, invisible to the paper's
    /// figures (and on the replay path the clock is rolled back anyway).
    fn barrier_recover(&mut self) {
        self.shared.flush_net();
        let _ = self.barrier.wait(self.t.total_ns());
    }

    /// Capture this node's shard of a barrier-consistent checkpoint.
    /// Called at `phase_begin`, between two barriers: on entry every
    /// compute thread has stopped issuing requests and every multi-hop
    /// round has completed (barriers are protocol quiescence points), so
    /// the cut contains no in-flight state; the closing barrier keeps any
    /// node from racing ahead and faulting into a half-captured peer.
    fn take_checkpoint(&mut self) {
        self.barrier_recover();
        self.trace(EventKind::CheckpointBegin, self.version, 0);
        // Count the checkpoint *before* the stats snapshot so the cut is
        // self-consistent: restoring it and replaying re-counts exactly
        // what a fault-free execution from this point would.
        NodeStats::bump(&self.shared.stats.checkpoints);
        let node = self.shared.checkpoint();
        let bytes = node.bytes();
        NodeStats::add(&self.shared.stats.checkpoint_bytes, bytes);
        let ckpt = Checkpoint {
            version: self.version,
            node,
            pred: self.pred.as_ref().map(|p| p.checkpoint()),
            commute: self.commute.as_ref().map(|c| c.checkpoint()),
            stats: self.shared.stats.snapshot(),
            vtime: self.t,
            reduce_round: self.reduce_round,
        };
        self.ckpts.store(self.me(), ckpt);
        self.trace(EventKind::CheckpointEnd, self.version, bytes);
        self.barrier_recover();
    }

    /// Drain this node's inbox: self-send a [`Msg::Fence`] and wait for it
    /// to come back as [`Wake::Fence`]. The self-send bypasses both the
    /// egress buffer and the fault layer, so the marker lands in this
    /// node's FIFO inbox *behind* every wire batch already queued there —
    /// its arrival proves the protocol thread has handled them all.
    /// Wake-ups from the destroyed phase (stale grants, pre-send acks)
    /// surface here and are discarded.
    fn fence_round(&mut self) {
        self.shared.send(self.me(), Msg::Fence);
        loop {
            match self.wake_rx.recv_timeout(self.shared.retry.timeout) {
                Ok(Wake::Fence) => return,
                Ok(_) => {} // dead phase's wake-ups: drop
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.is_aborting() {
                        std::panic::panic_any(prescient_tempest::Aborted);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("protocol thread terminated during recovery fence")
                }
            }
        }
    }

    /// The recovery protocol, run by *every* node once the crash flag is
    /// observed at a phase-end barrier. Three stages:
    ///
    /// 1. **Purge + drain.** Node 0 discards everything the fault layer
    ///    holds (at a quiescent cut every delayed/duplicated message is
    ///    semantically dead — its original was already answered), then two
    ///    fence rounds with barriers between empty the inbox channels:
    ///    round 1 drains in-flight batches (whose handling may emit
    ///    replies), round 2 drains those replies (all rejected as stale by
    ///    the seq/op/epoch gates). A second purge discards any reply the
    ///    fault layer captured in between. After the last barrier the
    ///    fabric is empty *and silent*.
    /// 2. **Restore.** Each node rolls its own shard back to the
    ///    checkpoint: block store, directory, watermarks, predictive
    ///    state, statistics, virtual clock. With the fabric silent this
    ///    cannot race with anything.
    /// 3. **Re-arm.** Node 0 lowers the crash flag; the caller replays the
    ///    phase, whose `phase_begin` re-runs the pre-send and re-arms
    ///    recording from the restored schedules — an exact re-execution.
    fn recover(&mut self) -> PhaseOutcome {
        let crashed = self.recovery.crashed().expect("recover() without a crash pending");
        let ckpt = self
            .ckpts
            .load(self.me())
            .expect("crash observed before the first checkpoint was taken");
        self.trace(EventKind::RecoveryBegin, ckpt.version, u64::from(crashed));
        if self.me() == 0 {
            self.shared.purge_faults();
        }
        self.barrier_recover();
        self.fence_round();
        self.barrier_recover();
        self.fence_round();
        self.barrier_recover();
        if self.me() == 0 {
            self.shared.purge_faults();
        }
        self.barrier_recover();
        // The fabric is empty and silent: restore this node's shard.
        self.shared.restore(&ckpt.node);
        if let (Some(p), Some(pc)) = (&self.pred, &ckpt.pred) {
            p.restore(pc);
        }
        if let (Some(c), Some(cc)) = (&self.commute, &ckpt.commute) {
            c.restore(cc);
        }
        self.shared.stats.restore(&ckpt.stats);
        self.t = ckpt.vtime;
        self.reduce_round = ckpt.reduce_round;
        // The replayed phase_begin re-increments to the checkpoint's
        // version, so later phases keep their fault-free ordinals.
        self.version = ckpt.version - 1;
        self.stash.clear();
        while self.wake_rx.try_recv().is_ok() {}
        self.barrier_recover();
        if self.me() == 0 {
            self.recovery.clear();
        }
        // Count the recovery *after* the rollback so it survives it; these
        // counters are reported but never equality-gated (a recovered run
        // is bit-identical to fault-free in every gated column).
        NodeStats::bump(&self.shared.stats.recoveries);
        NodeStats::bump(&self.shared.stats.replays);
        self.trace(EventKind::RecoveryEnd, ckpt.version, 0);
        self.barrier_recover();
        self.cur_phase = 0;
        self.shared.tracer().set_phase(0);
        PhaseOutcome::Replay
    }

    /// Execute a phase's pre-send *without* arming recording: the
    /// hand-optimized-protocol mode, where the application installed a
    /// manual schedule (Falsafi-style write-update push) and pays no
    /// schedule-building overhead. The caller still closes the phase with
    /// an ordinary barrier.
    pub fn presend_only(&mut self, phase: PhaseId) {
        let Some(pred) = self.pred.clone() else { return };
        self.cur_phase = phase;
        self.shared.tracer().set_phase(phase);
        self.barrier_presend();
        self.trace(EventKind::PresendStart, u64::from(phase), 0);
        let rep = presend(&pred, &self.shared, &self.wake_rx, &mut self.stash, phase);
        self.t.presend_ns += rep.vtime_ns;
        self.trace(EventKind::PresendEnd, u64::from(phase), rep.blocks_pushed);
        self.barrier_presend();
        pred.bump_epoch();
    }

    /// Flush one phase's schedule on this node (rebuild policy, §3.3).
    pub fn flush_schedule(&mut self, phase: PhaseId) {
        if let Some(p) = &self.pred {
            self.trace(EventKind::SchedFlush, u64::from(phase), 0);
            p.flush(phase);
        }
    }

    // ----- reductions (language feature, outside the protocol) -----------

    /// All-reduce: element-wise sum of `vals` across all nodes; every node
    /// receives the result in place. Deterministic: contributions are
    /// summed in node order, independent of arrival order. Billed as a
    /// log-depth message combining tree plus the barriers'
    /// synchronization.
    pub fn allreduce_sum(&mut self, vals: &mut [f64]) {
        self.reduce_round += 1;
        let round = self.reduce_round;
        let me = self.me() as usize;
        self.barrier();
        {
            let mut st = self.reduce.state.lock();
            if st.zeroed_round < round {
                st.zeroed_round = round;
                for c in st.contrib.iter_mut() {
                    c.clear();
                }
            }
            st.contrib[me].extend_from_slice(vals);
        }
        self.barrier();
        {
            let st = self.reduce.state.lock();
            vals.fill(0.0);
            for c in &st.contrib {
                assert_eq!(c.len(), vals.len(), "mismatched allreduce lengths");
                for (v, x) in vals.iter_mut().zip(c.iter()) {
                    *v += *x;
                }
            }
        }
        // Cost: a combining tree of depth log2(P).
        let rounds = (self.nodes().max(2) as f64).log2().ceil() as u64;
        let bytes = (vals.len() * 8) as u64;
        self.t.compute_ns += rounds * (self.cost.msg_startup_ns + bytes * self.cost.per_byte_ns);
    }

    /// All-reduce max of a single value.
    pub fn allreduce_max(&mut self, val: f64) -> f64 {
        // Implemented over the sum scratch via max-trick is unsound;
        // use a second pass: negate-sum does not give max, so do it with
        // the same scratch but a dedicated slot per node.
        let me = self.me() as usize;
        let n = self.nodes();
        let mut slots = vec![0.0; n];
        slots[me] = val;
        self.allreduce_sum(&mut slots);
        slots.into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    pub(crate) fn finish(mut self) -> (TimeBreakdown, Receiver<Wake>) {
        // The run's final cut: the tail after the last phase (gather
        // loops, teardown traffic). If the program ended inside an open
        // phase (raw-directive tests), credit the tail to that phase so
        // the telescoping sum stays exact.
        if self.metrics.is_some() {
            let (p, iter) = self.metrics.as_mut().and_then(|m| m.open.take()).unwrap_or((0, 0));
            self.metrics_cut(p, iter);
        }
        (self.t, self.wake_rx)
    }
}
