//! Crash model, barrier-consistent checkpoints, and the liveness watchdog.
//!
//! The recovery story (DESIGN.md §12) leans on the paper's own structure:
//! iterative applications separate parallel phases with global barriers, and
//! barrier entry is already a protocol quiescence point (egress flushed, no
//! multi-hop round in flight, every pre-send push acknowledged). The
//! runtime therefore gets coordinated checkpointing *for free*: each node
//! snapshots its own shard of machine state at `phase_begin`, and the set
//! of per-node snapshots taken at the same barrier is a consistent cut —
//! no message is in flight across it, so no channel state needs saving.
//!
//! Three pieces live here:
//!
//! * [`CheckpointStore`] / [`Checkpoint`] — the per-node snapshot slots
//!   (block store, directory shard, protocol watermarks, predictive
//!   schedules, statistics, virtual clock);
//! * [`RecoveryCtl`] — the crash flag every node observes at its next
//!   `phase_end` barrier, plus the once-only latch for the injected
//!   [`CrashPlan`](prescient_tempest::CrashPlan);
//! * [`MachineError`] and the [`WatchdogConfig`]-driven liveness monitor —
//!   the machinery that converts would-be infinite hangs (full partitions,
//!   mid-phase panics, protocol deadlocks) into a structured error naming
//!   the blocked nodes, their protocol state, and the tail of the trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use prescient_core::{CommuteCheckpoint, PredCheckpoint};
use prescient_stache::NodeCheckpoint;
use prescient_stache::NodeShared;
use prescient_tempest::fabric::FabricCtl;
use prescient_tempest::stats::StatsSnapshot;
use prescient_tempest::trace::EventKind;
use prescient_tempest::{NodeId, TimeBreakdown, Tracer, VBarrier};

// ---- checkpoints ----------------------------------------------------------

/// One node's complete rollback state, captured at a `phase_begin` barrier.
///
/// The `version` is the phase-execution ordinal the checkpoint guards (the
/// phase about to run when it was taken); restoring rolls the node back to
/// the instant *before* that phase's body touched anything.
#[derive(Clone)]
pub struct Checkpoint {
    /// Phase-execution ordinal this checkpoint guards.
    pub version: u64,
    /// Protocol-level state: block store, directory shard, seq counter,
    /// recall-reply cache.
    pub node: NodeCheckpoint,
    /// Predictive-protocol state (schedules, health, epoch), when active.
    pub pred: Option<PredCheckpoint>,
    /// Commutative-merge state (epoch, push bookkeeping, undrained delta
    /// chunks), when the merge extension is active.
    pub commute: Option<CommuteCheckpoint>,
    /// Every statistics counter at the cut — restored on rollback so the
    /// replayed phase re-counts its events and the run's totals stay
    /// bit-identical to a fault-free execution.
    pub stats: StatsSnapshot,
    /// The node's virtual clock at the cut.
    pub vtime: TimeBreakdown,
    /// The node's reduction-round counter at the cut.
    pub reduce_round: u64,
}

impl Checkpoint {
    /// Block-data bytes aboard (the checkpoint's dominant cost).
    pub fn bytes(&self) -> u64 {
        self.node.bytes()
    }
}

/// One checkpoint slot per node. Each compute thread writes only its own
/// slot; a new checkpoint replaces the previous one (recovery always rolls
/// back to the *last completed* barrier cut).
pub struct CheckpointStore {
    slots: Vec<Mutex<Option<Checkpoint>>>,
}

impl CheckpointStore {
    /// Empty slots for `n` nodes.
    pub fn new(n: usize) -> CheckpointStore {
        CheckpointStore { slots: (0..n).map(|_| Mutex::new(None)).collect() }
    }

    /// Store `ckpt` as node `node`'s rollback state.
    pub fn store(&self, node: NodeId, ckpt: Checkpoint) {
        *self.slots[node as usize].lock() = Some(ckpt);
    }

    /// Node `node`'s current rollback state, if any checkpoint has been
    /// taken.
    pub fn load(&self, node: NodeId) -> Option<Checkpoint> {
        self.slots[node as usize].lock().clone()
    }
}

// ---- the crash flag -------------------------------------------------------

/// Machine-wide recovery control: the crash flag raised by the injected
/// crash and observed by every node at its next `phase_end` barrier, plus
/// the once-only latch that keeps a [`CrashPlan`](prescient_tempest::CrashPlan)
/// from re-firing on the replayed (or any later) instance of its phase.
#[derive(Default)]
pub struct RecoveryCtl {
    /// 0 = no crash pending; `node + 1` otherwise.
    crashed: AtomicU64,
    /// 0 = the crash plan has not fired yet.
    consumed: AtomicU64,
}

impl RecoveryCtl {
    /// Fresh control block (no crash pending, plan unfired).
    pub fn new() -> RecoveryCtl {
        RecoveryCtl::default()
    }

    /// Latch the crash plan: returns `true` exactly once, ever — the
    /// replayed phase passes the same version ordinal and must not crash
    /// again.
    pub fn consume_crash(&self) -> bool {
        self.consumed.swap(1, Ordering::AcqRel) == 0
    }

    /// Raise the crash flag. Called by the crashing node *before* it
    /// enters the phase-end barrier, so every node observes the flag when
    /// it leaves that barrier.
    pub fn declare_crash(&self, node: NodeId) {
        self.crashed.store(u64::from(node) + 1, Ordering::Release);
    }

    /// The node whose crash is pending, if any.
    pub fn crashed(&self) -> Option<NodeId> {
        match self.crashed.load(Ordering::Acquire) {
            0 => None,
            n => Some((n - 1) as NodeId),
        }
    }

    /// Lower the crash flag (node 0, at the end of the recovery protocol,
    /// between two barriers).
    pub fn clear(&self) {
        self.crashed.store(0, Ordering::Release);
    }
}

// ---- structured machine errors --------------------------------------------

/// Why a machine died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A compute thread panicked mid-run (application or protocol bug,
    /// or an injected crash without checkpointing).
    Panic,
    /// The watchdog found no node making progress and no crash pending:
    /// the machine is deadlocked (e.g. a full fabric partition).
    Deadlock,
    /// The watchdog found no progress while a crash was pending: the
    /// recovery protocol itself stalled.
    Crash,
    /// `Machine::run` misuse: a run is already executing on this machine,
    /// or a previous run died (the fabric abort flag and barrier poison
    /// stay raised — build a fresh machine). Reported as a structured
    /// error instead of a panic mid-assembly, so drivers that reuse a
    /// machine across runs can handle the condition.
    AlreadyRunning,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Crash => "crash",
            FailureKind::AlreadyRunning => "misuse (already running or dead)",
        })
    }
}

/// One node's protocol state at the time of death, embedded in
/// [`MachineError`] so a hang report names exactly where each node stood.
#[derive(Debug, Clone, Copy)]
pub struct NodeErrorState {
    /// The node.
    pub node: NodeId,
    /// Seq of the fetch its compute thread was blocked on (0 = none).
    pub outstanding_fetch: u64,
    /// Messages sent so far.
    pub msgs_out: u64,
    /// Fetch re-issues so far (ticks while a partition eats grants).
    pub retries: u64,
    /// Pre-send retransmission rounds so far.
    pub presend_retries: u64,
    /// Recoveries completed so far.
    pub recoveries: u64,
}

/// A machine death, structured: what happened, who, every node's protocol
/// state, and the tail of the merged event trace (empty when tracing is
/// off). Returned by `Machine::try_run` instead of hanging or tearing the
/// process down with a bare panic.
#[derive(Debug, Clone)]
pub struct MachineError {
    /// What killed the machine.
    pub kind: FailureKind,
    /// The node at fault (the panicking node, the crashed node), when one
    /// is identifiable.
    pub node: Option<NodeId>,
    /// Human-readable account: the panic message, or the watchdog's
    /// report naming the blocked nodes.
    pub message: String,
    /// Every node's protocol state at death.
    pub nodes: Vec<NodeErrorState>,
    /// The last few merged trace events (JSONL lines), when tracing ran.
    pub trace_tail: Vec<String>,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine {}", self.kind)?;
        if let Some(n) = self.node {
            write!(f, " (node {n})")?;
        }
        write!(f, ": {}", self.message)?;
        for s in &self.nodes {
            write!(
                f,
                "\n  node {}: outstanding_fetch={} msgs_out={} retries={} presend_retries={} recoveries={}",
                s.node, s.outstanding_fetch, s.msgs_out, s.retries, s.presend_retries, s.recoveries
            )?;
        }
        if !self.trace_tail.is_empty() {
            write!(f, "\n  trace tail ({} events):", self.trace_tail.len())?;
            for line in &self.trace_tail {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for MachineError {}

/// The first failure observed during a run (panic isolation and the
/// watchdog race to fill it; first writer wins, later failures are
/// collateral).
pub(crate) struct ErrorSlot {
    slot: Mutex<Option<(FailureKind, Option<NodeId>, String)>>,
}

impl ErrorSlot {
    pub(crate) fn new() -> ErrorSlot {
        ErrorSlot { slot: Mutex::new(None) }
    }

    /// Record a failure unless one is already recorded.
    pub(crate) fn record(&self, kind: FailureKind, node: Option<NodeId>, message: String) {
        let mut g = self.slot.lock();
        if g.is_none() {
            *g = Some((kind, node, message));
        }
    }

    pub(crate) fn take(&self) -> Option<(FailureKind, Option<NodeId>, String)> {
        self.slot.lock().take()
    }
}

// ---- the liveness watchdog ------------------------------------------------

/// Liveness watchdog policy. The watchdog samples every node's
/// useful-progress counters once per `poll`; after `stalled_polls`
/// consecutive samples with zero machine-wide progress it declares the
/// machine dead, so the wall-clock detection budget is
/// `poll * stalled_polls` (plus one poll of slack).
///
/// *Useful progress* deliberately excludes retry counters: a fully
/// partitioned machine retries forever without accomplishing anything, and
/// exactly that busy-wait must trip the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Sampling interval.
    pub poll: Duration,
    /// Consecutive zero-progress samples before firing.
    pub stalled_polls: u32,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { poll: Duration::from_millis(100), stalled_polls: 20 }
    }
}

impl WatchdogConfig {
    /// The wall-clock budget after which a stalled machine is declared
    /// dead.
    pub fn budget(&self) -> Duration {
        self.poll * self.stalled_polls
    }
}

/// The counters that constitute *useful* progress for one node. Retries
/// and pre-send retransmissions are excluded on purpose (see
/// [`WatchdogConfig`]); checkpoint/recovery counters are included so a
/// machine busy recovering is never declared dead.
fn progress(s: &StatsSnapshot) -> u64 {
    s.reads
        + s.writes
        + s.data_bytes_in
        + s.presend_blocks_in
        + s.sched_records
        + s.invals_in
        + s.recalls_in
        + s.checkpoints
        + s.recoveries
}

pub(crate) struct Watchdog {
    stop: Sender<()>,
    join: JoinHandle<()>,
}

impl Watchdog {
    /// Start the monitor thread. On firing it records the failure into
    /// `errors`, emits a `WatchdogFire` trace event, and aborts the
    /// machine (fabric abort flag + barrier poison) so every blocked
    /// thread unwinds instead of hanging.
    pub(crate) fn spawn(
        cfg: WatchdogConfig,
        shareds: Vec<Arc<NodeShared>>,
        recovery: Arc<RecoveryCtl>,
        barrier: Arc<VBarrier>,
        ctl: Arc<FabricCtl>,
        errors: Arc<ErrorSlot>,
        tracer: Tracer,
    ) -> Watchdog {
        let (stop, stop_rx): (Sender<()>, Receiver<()>) = crossbeam::channel::unbounded();
        let join = std::thread::Builder::new()
            .name("watchdog".into())
            .spawn(move || {
                let mut last: Vec<u64> =
                    shareds.iter().map(|s| progress(&s.stats.snapshot())).collect();
                let mut stalled = 0u32;
                loop {
                    match stop_rx.recv_timeout(cfg.poll) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                    let cur: Vec<u64> =
                        shareds.iter().map(|s| progress(&s.stats.snapshot())).collect();
                    if cur == last {
                        stalled += 1;
                    } else {
                        stalled = 0;
                        last = cur;
                    }
                    if stalled < cfg.stalled_polls {
                        continue;
                    }
                    // No node made useful progress for the whole budget:
                    // the machine is dead. Classify, report, abort.
                    let crashed = recovery.crashed();
                    let kind =
                        if crashed.is_some() { FailureKind::Crash } else { FailureKind::Deadlock };
                    let blocked: Vec<NodeId> = (0..shareds.len()).map(|i| i as NodeId).collect();
                    let mut bitmap = 0u64;
                    for &b in &blocked {
                        if b < 64 {
                            bitmap |= 1 << b;
                        }
                    }
                    let detail: Vec<String> = shareds
                        .iter()
                        .map(|s| {
                            format!(
                                "node {} (outstanding fetch seq {}, {} retries)",
                                s.me,
                                s.outstanding(),
                                s.stats.retries.load(Ordering::Relaxed)
                            )
                        })
                        .collect();
                    let message = format!(
                        "no useful progress for {:?} ({} polls x {:?}); {}; blocked: {}",
                        cfg.budget(),
                        cfg.stalled_polls,
                        cfg.poll,
                        match crashed {
                            Some(n) => format!("crash of node {n} pending, recovery stalled"),
                            None => "no crash pending: deadlock (all nodes blocked, none at a \
                                     completed barrier)"
                                .into(),
                        },
                        detail.join("; "),
                    );
                    tracer.emit(
                        EventKind::WatchdogFire,
                        if kind == FailureKind::Crash { 1 } else { 2 },
                        bitmap,
                    );
                    errors.record(kind, crashed, message);
                    ctl.abort();
                    barrier.poison();
                    return;
                }
            })
            .expect("spawn watchdog thread");
        Watchdog { stop, join }
    }

    /// Stop the monitor (normal end of run) and wait for it to exit.
    pub(crate) fn stop(self) {
        let _ = self.stop.send(());
        let _ = self.join.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_ctl_flag_round_trip() {
        let r = RecoveryCtl::new();
        assert_eq!(r.crashed(), None);
        assert!(r.consume_crash(), "first fire consumes the plan");
        assert!(!r.consume_crash(), "second fire is latched out");
        r.declare_crash(3);
        assert_eq!(r.crashed(), Some(3));
        r.clear();
        assert_eq!(r.crashed(), None);
    }

    #[test]
    fn error_slot_first_writer_wins() {
        let e = ErrorSlot::new();
        e.record(FailureKind::Panic, Some(1), "first".into());
        e.record(FailureKind::Deadlock, Some(2), "second".into());
        let (kind, node, msg) = e.take().expect("recorded");
        assert_eq!(kind, FailureKind::Panic);
        assert_eq!(node, Some(1));
        assert_eq!(msg, "first");
        assert!(e.take().is_none(), "take drains the slot");
    }

    #[test]
    fn machine_error_display_names_everything() {
        let err = MachineError {
            kind: FailureKind::Deadlock,
            node: None,
            message: "no progress".into(),
            nodes: vec![NodeErrorState {
                node: 2,
                outstanding_fetch: 17,
                msgs_out: 5,
                retries: 9,
                presend_retries: 0,
                recoveries: 0,
            }],
            trace_tail: vec!["{\"kind\":\"Retry\"}".into()],
        };
        let s = err.to_string();
        assert!(s.contains("machine deadlock"));
        assert!(s.contains("node 2"));
        assert!(s.contains("retries=9"));
        assert!(s.contains("Retry"));
    }

    #[test]
    fn watchdog_budget() {
        let w = WatchdogConfig { poll: Duration::from_millis(10), stalled_polls: 5 };
        assert_eq!(w.budget(), Duration::from_millis(50));
    }
}
