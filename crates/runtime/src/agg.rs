//! Distributed aggregates — C\*\*'s data collections (§4.1).
//!
//! An aggregate is a global array of primitive elements distributed across
//! the nodes. Distribution is an *allocation* decision: each node's
//! partition lives in that node's heap segment, so the partition's blocks
//! are homed where the owning computation runs (the effect of the paper's
//! page-granularity distribution through Stache).
//!
//! Supported computation distributions (§4.1): block distributions on 1-D
//! aggregates, row-block and tiled distributions on 2-D aggregates, plus a
//! cyclic 1-D distribution for load-imbalance experiments.

use std::marker::PhantomData;

use prescient_tempest::{GAddr, NodeId, Prim};

use crate::machine::Machine;

/// 1-D distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist1D {
    /// Contiguous chunks of `ceil(len/P)` elements per node.
    Block,
    /// Element `i` owned by node `i mod P` (cyclic).
    Cyclic,
}

/// 2-D distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist2D {
    /// Contiguous row ranges per node.
    RowBlock,
    /// A `pr × pc` process grid of tiles.
    Tiled {
        /// Process-grid rows.
        pr: usize,
        /// Process-grid columns.
        pc: usize,
    },
}

/// A distributed 1-D aggregate of `T`.
pub struct Agg1D<T: Prim> {
    len: usize,
    nodes: usize,
    dist: Dist1D,
    /// Partition base address per node.
    bases: Vec<GAddr>,
    _t: PhantomData<T>,
}

impl<T: Prim> Agg1D<T> {
    /// Allocate an aggregate of `len` elements on `m` with distribution
    /// `dist`.
    pub fn new(m: &Machine, len: usize, dist: Dist1D) -> Agg1D<T> {
        let nodes = m.nodes();
        let mut bases = Vec::with_capacity(nodes);
        for p in 0..nodes {
            let count = match dist {
                Dist1D::Block => block_range(len, nodes, p).len(),
                Dist1D::Cyclic => cyclic_count(len, nodes, p),
            };
            let bytes = (count.max(1) * T::BYTES) as u64;
            bases.push(m.alloc_on(p as NodeId, bytes, T::BYTES as u64));
        }
        Agg1D { len, nodes, dist, bases, _t: PhantomData }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the aggregate empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The owning node of element `i`.
    pub fn owner(&self, i: usize) -> NodeId {
        debug_assert!(i < self.len);
        match self.dist {
            Dist1D::Block => {
                let per = self.len.div_ceil(self.nodes);
                ((i / per.max(1)).min(self.nodes - 1)) as NodeId
            }
            Dist1D::Cyclic => (i % self.nodes) as NodeId,
        }
    }

    /// Global address of element `i`.
    pub fn addr(&self, i: usize) -> GAddr {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        match self.dist {
            Dist1D::Block => {
                let p = self.owner(i) as usize;
                let start = block_range(self.len, self.nodes, p).start;
                self.bases[p].add(((i - start) * T::BYTES) as u64)
            }
            Dist1D::Cyclic => {
                let p = i % self.nodes;
                let k = i / self.nodes;
                self.bases[p].add((k * T::BYTES) as u64)
            }
        }
    }

    /// The element indices owned by node `p`.
    pub fn my_elems(&self, p: NodeId) -> Vec<usize> {
        let p = p as usize;
        match self.dist {
            Dist1D::Block => block_range(self.len, self.nodes, p).collect(),
            Dist1D::Cyclic => (p..self.len).step_by(self.nodes).collect(),
        }
    }

    /// The contiguous index range owned by node `p` (Block distribution
    /// only).
    pub fn my_range(&self, p: NodeId) -> std::ops::Range<usize> {
        assert_eq!(self.dist, Dist1D::Block, "my_range requires the Block distribution");
        block_range(self.len, self.nodes, p as usize)
    }
}

/// A distributed 2-D aggregate of `T`, `rows × cols`.
pub struct Agg2D<T: Prim> {
    rows: usize,
    cols: usize,
    nodes: usize,
    dist: Dist2D,
    bases: Vec<GAddr>,
    _t: PhantomData<T>,
}

impl<T: Prim> Agg2D<T> {
    /// Allocate a `rows × cols` aggregate on `m`.
    pub fn new(m: &Machine, rows: usize, cols: usize, dist: Dist2D) -> Agg2D<T> {
        if let Dist2D::Tiled { pr, pc } = dist {
            assert_eq!(pr * pc, m.nodes(), "tile grid must cover exactly all nodes");
        }
        let nodes = m.nodes();
        let mut bases = Vec::with_capacity(nodes);
        for p in 0..nodes {
            let count = match dist {
                Dist2D::RowBlock => block_range(rows, nodes, p).len() * cols,
                Dist2D::Tiled { pr, pc } => {
                    let (tr, tc) = (p / pc, p % pc);
                    block_range(rows, pr, tr).len() * block_range(cols, pc, tc).len()
                }
            };
            let bytes = (count.max(1) * T::BYTES) as u64;
            bases.push(m.alloc_on(p as NodeId, bytes, T::BYTES as u64));
        }
        Agg2D { rows, cols, nodes, dist, bases, _t: PhantomData }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Owning node of element `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> NodeId {
        debug_assert!(i < self.rows && j < self.cols);
        match self.dist {
            Dist2D::RowBlock => {
                let per = self.rows.div_ceil(self.nodes);
                ((i / per.max(1)).min(self.nodes - 1)) as NodeId
            }
            Dist2D::Tiled { pr, pc } => {
                let tr = owner_of(self.rows, pr, i);
                let tc = owner_of(self.cols, pc, j);
                (tr * pc + tc) as NodeId
            }
        }
    }

    /// Global address of element `(i, j)`.
    pub fn addr(&self, i: usize, j: usize) -> GAddr {
        debug_assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        match self.dist {
            Dist2D::RowBlock => {
                let p = self.owner(i, j) as usize;
                let r0 = block_range(self.rows, self.nodes, p).start;
                self.bases[p].add((((i - r0) * self.cols + j) * T::BYTES) as u64)
            }
            Dist2D::Tiled { pr, pc } => {
                let tr = owner_of(self.rows, pr, i);
                let tc = owner_of(self.cols, pc, j);
                let p = tr * pc + tc;
                let r0 = block_range(self.rows, pr, tr).start;
                let c0 = block_range(self.cols, pc, tc).start;
                let width = block_range(self.cols, pc, tc).len();
                self.bases[p].add((((i - r0) * width + (j - c0)) * T::BYTES) as u64)
            }
        }
    }

    /// Row range owned by node `p` (RowBlock only).
    pub fn my_rows(&self, p: NodeId) -> std::ops::Range<usize> {
        assert_eq!(self.dist, Dist2D::RowBlock, "my_rows requires the RowBlock distribution");
        block_range(self.rows, self.nodes, p as usize)
    }

    /// `(row range, col range)` owned by node `p` (Tiled only).
    pub fn my_tile(&self, p: NodeId) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let Dist2D::Tiled { pr, pc } = self.dist else {
            panic!("my_tile requires the Tiled distribution");
        };
        let _ = pr;
        let (tr, tc) = ((p as usize) / pc, (p as usize) % pc);
        (block_range(self.rows, pr, tr), block_range(self.cols, pc, tc))
    }
}

/// Contiguous `len` elements split into `parts`: the range of part `p`.
fn block_range(len: usize, parts: usize, p: usize) -> std::ops::Range<usize> {
    let per = len.div_ceil(parts).max(1);
    let start = (p * per).min(len);
    let end = ((p + 1) * per).min(len);
    start..end
}

fn cyclic_count(len: usize, parts: usize, p: usize) -> usize {
    if p < len % parts {
        len / parts + 1
    } else {
        len / parts
    }
}

fn owner_of(len: usize, parts: usize, i: usize) -> usize {
    let per = len.div_ceil(parts).max(1);
    (i / per).min(parts - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::stache(n, 32))
    }

    #[test]
    fn block_ranges_partition() {
        for (len, parts) in [(10, 3), (128, 4), (7, 8), (0, 2)] {
            let mut covered = 0;
            for p in 0..parts {
                covered += block_range(len, parts, p).len();
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
        }
    }

    #[test]
    fn agg1d_block_layout() {
        let m = machine(4);
        let a = Agg1D::<f64>::new(&m, 100, Dist1D::Block);
        assert_eq!(a.len(), 100);
        // Partition ownership matches home nodes of addresses.
        for i in [0, 24, 25, 49, 50, 99] {
            let owner = a.owner(i);
            assert_eq!(m.layout().home_of(a.addr(i)), owner, "element {i}");
        }
        assert_eq!(a.my_range(0), 0..25);
        assert_eq!(a.my_range(3), 75..100);
    }

    #[test]
    fn agg1d_cyclic_layout() {
        let m = machine(3);
        let a = Agg1D::<u64>::new(&m, 10, Dist1D::Cyclic);
        assert_eq!(a.owner(0), 0);
        assert_eq!(a.owner(4), 1);
        assert_eq!(a.my_elems(0), vec![0, 3, 6, 9]);
        assert_eq!(a.my_elems(2), vec![2, 5, 8]);
        // Distinct elements get distinct addresses.
        let mut addrs: Vec<u64> = (0..10).map(|i| a.addr(i).0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
    }

    #[test]
    fn agg2d_rowblock_layout() {
        let m = machine(4);
        let g = Agg2D::<f64>::new(&m, 16, 8, Dist2D::RowBlock);
        assert_eq!(g.my_rows(0), 0..4);
        assert_eq!(g.my_rows(3), 12..16);
        for (i, j) in [(0, 0), (3, 7), (4, 0), (15, 7)] {
            assert_eq!(m.layout().home_of(g.addr(i, j)), g.owner(i, j));
        }
        // Row-major within a partition.
        assert_eq!(g.addr(0, 1).0 - g.addr(0, 0).0, 8);
        assert_eq!(g.addr(1, 0).0 - g.addr(0, 0).0, 8 * 8);
    }

    #[test]
    fn agg2d_tiled_layout() {
        let m = machine(4);
        let g = Agg2D::<f64>::new(&m, 8, 8, Dist2D::Tiled { pr: 2, pc: 2 });
        assert_eq!(g.owner(0, 0), 0);
        assert_eq!(g.owner(0, 7), 1);
        assert_eq!(g.owner(7, 0), 2);
        assert_eq!(g.owner(7, 7), 3);
        let (rr, cc) = g.my_tile(3);
        assert_eq!((rr, cc), (4..8, 4..8));
        for (i, j) in [(0, 0), (2, 5), (5, 2), (7, 7)] {
            assert_eq!(m.layout().home_of(g.addr(i, j)), g.owner(i, j));
        }
    }

    #[test]
    #[should_panic(expected = "tile grid")]
    fn tiled_grid_must_match_nodes() {
        let m = machine(4);
        let _ = Agg2D::<f64>::new(&m, 8, 8, Dist2D::Tiled { pr: 3, pc: 2 });
    }
}
