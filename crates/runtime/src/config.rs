//! Machine configuration.

use prescient_core::{CommuteConfig, PredictiveConfig};
use prescient_stache::RetryConfig;
use prescient_tempest::{BatchConfig, CostModel, CrashPlan, FaultPlan, TraceConfig};

use crate::recovery::WatchdogConfig;

/// Which coherence protocol the machine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Plain Stache (write-invalidate). The `phase_begin`/`phase_end`
    /// directives degrade to the natural end-of-phase barrier — this is the
    /// paper's *unoptimized* configuration.
    Stache,
    /// Stache plus the predictive protocol: directives record schedules and
    /// pre-send data — the paper's *optimized* configuration.
    Predictive(PredictiveConfig),
    /// Stache plus the commutative-merge extension: phases the `cstar`
    /// commutativity analysis proves mergeable run privatized, with
    /// per-node delta buffers exchanged in bulk at the phase barrier
    /// (`NodeCtx::merge_exchange`). Non-merged phases run as plain Stache.
    Commutative(CommuteConfig),
}

impl ProtocolKind {
    /// Default optimized configuration.
    pub fn predictive() -> ProtocolKind {
        ProtocolKind::Predictive(PredictiveConfig::default())
    }

    /// Default commutative-merge configuration.
    pub fn commutative() -> ProtocolKind {
        ProtocolKind::Commutative(CommuteConfig::default())
    }

    /// Is the predictive protocol active?
    pub fn is_predictive(&self) -> bool {
        matches!(self, ProtocolKind::Predictive(_))
    }

    /// Is the commutative-merge extension active?
    pub fn is_commutative(&self) -> bool {
        matches!(self, ProtocolKind::Commutative(_))
    }
}

/// Configuration of one emulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of nodes (the paper's machine has 32).
    pub nodes: usize,
    /// Cache-block size in bytes (the paper sweeps 32–1024).
    pub block_size: usize,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Fabric fault injection; `None` (or an inactive plan) is a perfect
    /// fabric. Chaos tests use [`FaultPlan::chaos`].
    pub faults: Option<FaultPlan>,
    /// Compute-side request retry policy (timeouts matter only when the
    /// fabric can drop or delay messages).
    pub retry: RetryConfig,
    /// Run the whole-machine coherence check after every [`run`]
    /// (`crate::Machine::run`) returns; panics on violations. Cheap for
    /// test-sized machines, intended for chaos tests.
    pub validate: bool,
    /// Fabric egress aggregation policy. Constructors take the
    /// `PRESCIENT_BATCH` environment override when present (the CI chaos
    /// matrix forces batching on/off through it), else the fabric default;
    /// [`MachineConfig::with_batch`] pins it explicitly.
    pub batch: BatchConfig,
    /// Protocol event tracing. Constructors take the `PRESCIENT_TRACE`
    /// environment override when present (off otherwise — tracing is
    /// zero-cost when disabled); [`MachineConfig::with_trace`] pins it
    /// explicitly. On teardown a traced machine exports the merged event
    /// stream (see `crate::Machine`).
    pub trace: TraceConfig,
    /// Injected crash: "crash node n at phase-execution k" (fires at that
    /// phase's end, destroying its work). Constructors take the
    /// `PRESCIENT_CRASH` environment override (`"node@version"`) when
    /// present; [`MachineConfig::with_crash_plan`] pins it explicitly and
    /// enables checkpointing so the machine can recover.
    pub crash: Option<CrashPlan>,
    /// Barrier-consistent checkpointing: every `phase_begin` snapshots
    /// each node's protocol state so an injected crash rolls the machine
    /// back to the last completed barrier instead of dying. Off by
    /// default (zero overhead); enabled by
    /// [`MachineConfig::with_checkpoints`] or implicitly by a crash plan.
    pub checkpoints: bool,
    /// Liveness watchdog: convert infinite hangs (full partitions,
    /// stalled recoveries, protocol deadlocks) into a structured
    /// `MachineError` within a bounded wall-clock budget. `None` (the
    /// default) runs no monitor thread.
    pub watchdog: Option<WatchdogConfig>,
}

impl MachineConfig {
    /// An unoptimized (plain Stache) machine.
    pub fn stache(nodes: usize, block_size: usize) -> MachineConfig {
        let crash = CrashPlan::from_env();
        MachineConfig {
            nodes,
            block_size,
            cost: CostModel::default(),
            protocol: ProtocolKind::Stache,
            faults: None,
            retry: RetryConfig::default(),
            validate: false,
            batch: BatchConfig::default_for_fabric(),
            trace: TraceConfig::default_for_machine(),
            crash,
            // A crash without a checkpoint is fatal; an env-injected crash
            // is meant to exercise recovery, so it brings checkpointing
            // along (as does `with_crash_plan`).
            checkpoints: crash.is_some(),
            watchdog: None,
        }
    }

    /// An optimized (predictive protocol) machine.
    pub fn predictive(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            protocol: ProtocolKind::predictive(),
            ..MachineConfig::stache(nodes, block_size)
        }
    }

    /// A commutative-merge machine (plain Stache plus privatize-and-merge
    /// for the phases the application runs through `merge_exchange`).
    pub fn commutative(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            protocol: ProtocolKind::commutative(),
            ..MachineConfig::stache(nodes, block_size)
        }
    }

    /// Inject faults into the fabric.
    pub fn with_faults(mut self, plan: FaultPlan) -> MachineConfig {
        self.faults = Some(plan);
        self
    }

    /// Override the request retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> MachineConfig {
        self.retry = retry;
        self
    }

    /// Check coherence invariants after every run.
    pub fn validated(mut self) -> MachineConfig {
        self.validate = true;
        self
    }

    /// Pin the fabric's egress aggregation policy (overrides the
    /// environment default).
    pub fn with_batch(mut self, batch: BatchConfig) -> MachineConfig {
        self.batch = batch;
        self
    }

    /// Pin the tracing policy (overrides the environment default).
    pub fn with_trace(mut self, trace: TraceConfig) -> MachineConfig {
        self.trace = trace;
        self
    }

    /// Inject a crash (overrides the `PRESCIENT_CRASH` environment
    /// default) and enable the checkpointing that lets the machine
    /// recover from it.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> MachineConfig {
        self.crash = Some(plan);
        self.checkpoints = true;
        self
    }

    /// Enable or disable barrier-consistent checkpointing explicitly.
    pub fn with_checkpoints(mut self, on: bool) -> MachineConfig {
        self.checkpoints = on;
        self
    }

    /// Run the liveness watchdog with the given policy.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> MachineConfig {
        self.watchdog = Some(watchdog);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = MachineConfig::stache(4, 32);
        assert!(!u.protocol.is_predictive());
        assert!(u.faults.is_none());
        assert!(!u.validate);
        let o = MachineConfig::predictive(4, 32);
        assert!(o.protocol.is_predictive());
        assert_eq!(o.nodes, 4);
        assert_eq!(o.block_size, 32);
        let c = MachineConfig::commutative(4, 32);
        assert!(c.protocol.is_commutative());
        assert!(!c.protocol.is_predictive());
        assert!(!MachineConfig::stache(4, 32).protocol.is_commutative());
    }

    #[test]
    fn builders() {
        let c = MachineConfig::stache(4, 32).with_faults(FaultPlan::chaos(7)).validated();
        assert!(c.faults.expect("plan").is_active());
        assert!(c.validate);
        let c = c.with_batch(BatchConfig::off());
        assert!(!c.batch.is_batching());
        assert_eq!(
            MachineConfig::stache(2, 32).with_batch(BatchConfig::new(64)).batch.max_batch,
            64
        );
    }

    #[test]
    fn crash_plan_brings_checkpoints_along() {
        let c = MachineConfig::predictive(4, 32);
        assert!(c.crash.is_none());
        assert!(!c.checkpoints);
        assert!(c.watchdog.is_none());
        let c = c.with_crash_plan(CrashPlan::new(2, 3));
        assert_eq!(c.crash.expect("plan").node, 2);
        assert!(c.checkpoints, "a crash plan must enable recovery");
        let c = MachineConfig::stache(4, 32).with_checkpoints(true);
        assert!(c.checkpoints);
        let c = c.with_watchdog(WatchdogConfig::default());
        assert!(c.watchdog.is_some());
    }
}
