//! Machine configuration.

use prescient_core::PredictiveConfig;
use prescient_stache::RetryConfig;
use prescient_tempest::{BatchConfig, CostModel, FaultPlan, TraceConfig};

/// Which coherence protocol the machine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Plain Stache (write-invalidate). The `phase_begin`/`phase_end`
    /// directives degrade to the natural end-of-phase barrier — this is the
    /// paper's *unoptimized* configuration.
    Stache,
    /// Stache plus the predictive protocol: directives record schedules and
    /// pre-send data — the paper's *optimized* configuration.
    Predictive(PredictiveConfig),
}

impl ProtocolKind {
    /// Default optimized configuration.
    pub fn predictive() -> ProtocolKind {
        ProtocolKind::Predictive(PredictiveConfig::default())
    }

    /// Is the predictive protocol active?
    pub fn is_predictive(&self) -> bool {
        matches!(self, ProtocolKind::Predictive(_))
    }
}

/// Configuration of one emulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of nodes (the paper's machine has 32).
    pub nodes: usize,
    /// Cache-block size in bytes (the paper sweeps 32–1024).
    pub block_size: usize,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Fabric fault injection; `None` (or an inactive plan) is a perfect
    /// fabric. Chaos tests use [`FaultPlan::chaos`].
    pub faults: Option<FaultPlan>,
    /// Compute-side request retry policy (timeouts matter only when the
    /// fabric can drop or delay messages).
    pub retry: RetryConfig,
    /// Run the whole-machine coherence check after every [`run`]
    /// (`crate::Machine::run`) returns; panics on violations. Cheap for
    /// test-sized machines, intended for chaos tests.
    pub validate: bool,
    /// Fabric egress aggregation policy. Constructors take the
    /// `PRESCIENT_BATCH` environment override when present (the CI chaos
    /// matrix forces batching on/off through it), else the fabric default;
    /// [`MachineConfig::with_batch`] pins it explicitly.
    pub batch: BatchConfig,
    /// Protocol event tracing. Constructors take the `PRESCIENT_TRACE`
    /// environment override when present (off otherwise — tracing is
    /// zero-cost when disabled); [`MachineConfig::with_trace`] pins it
    /// explicitly. On teardown a traced machine exports the merged event
    /// stream (see `crate::Machine`).
    pub trace: TraceConfig,
}

impl MachineConfig {
    /// An unoptimized (plain Stache) machine.
    pub fn stache(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            nodes,
            block_size,
            cost: CostModel::default(),
            protocol: ProtocolKind::Stache,
            faults: None,
            retry: RetryConfig::default(),
            validate: false,
            batch: BatchConfig::default_for_fabric(),
            trace: TraceConfig::default_for_machine(),
        }
    }

    /// An optimized (predictive protocol) machine.
    pub fn predictive(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            protocol: ProtocolKind::predictive(),
            ..MachineConfig::stache(nodes, block_size)
        }
    }

    /// Inject faults into the fabric.
    pub fn with_faults(mut self, plan: FaultPlan) -> MachineConfig {
        self.faults = Some(plan);
        self
    }

    /// Override the request retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> MachineConfig {
        self.retry = retry;
        self
    }

    /// Check coherence invariants after every run.
    pub fn validated(mut self) -> MachineConfig {
        self.validate = true;
        self
    }

    /// Pin the fabric's egress aggregation policy (overrides the
    /// environment default).
    pub fn with_batch(mut self, batch: BatchConfig) -> MachineConfig {
        self.batch = batch;
        self
    }

    /// Pin the tracing policy (overrides the environment default).
    pub fn with_trace(mut self, trace: TraceConfig) -> MachineConfig {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = MachineConfig::stache(4, 32);
        assert!(!u.protocol.is_predictive());
        assert!(u.faults.is_none());
        assert!(!u.validate);
        let o = MachineConfig::predictive(4, 32);
        assert!(o.protocol.is_predictive());
        assert_eq!(o.nodes, 4);
        assert_eq!(o.block_size, 32);
    }

    #[test]
    fn builders() {
        let c = MachineConfig::stache(4, 32).with_faults(FaultPlan::chaos(7)).validated();
        assert!(c.faults.expect("plan").is_active());
        assert!(c.validate);
        let c = c.with_batch(BatchConfig::off());
        assert!(!c.batch.is_batching());
        assert_eq!(
            MachineConfig::stache(2, 32).with_batch(BatchConfig::new(64)).batch.max_batch,
            64
        );
    }
}
