//! Machine configuration.

use prescient_core::{CommuteConfig, PredictiveConfig};
use prescient_stache::{PlacementConfig, RetryConfig};
use prescient_tempest::{
    BatchConfig, CostModel, CrashPlan, FaultPlan, HomeMap, MetricsConfig, TraceConfig,
};

use crate::recovery::WatchdogConfig;

/// Which coherence protocol the machine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Plain Stache (write-invalidate). The `phase_begin`/`phase_end`
    /// directives degrade to the natural end-of-phase barrier — this is the
    /// paper's *unoptimized* configuration.
    Stache,
    /// Stache plus the predictive protocol: directives record schedules and
    /// pre-send data — the paper's *optimized* configuration.
    Predictive(PredictiveConfig),
    /// Stache plus the commutative-merge extension: phases the `cstar`
    /// commutativity analysis proves mergeable run privatized, with
    /// per-node delta buffers exchanged in bulk at the phase barrier
    /// (`NodeCtx::merge_exchange`). Non-merged phases run as plain Stache.
    Commutative(CommuteConfig),
}

impl ProtocolKind {
    /// Default optimized configuration.
    pub fn predictive() -> ProtocolKind {
        ProtocolKind::Predictive(PredictiveConfig::default())
    }

    /// Default commutative-merge configuration.
    pub fn commutative() -> ProtocolKind {
        ProtocolKind::Commutative(CommuteConfig::default())
    }

    /// Is the predictive protocol active?
    pub fn is_predictive(&self) -> bool {
        matches!(self, ProtocolKind::Predictive(_))
    }

    /// Is the commutative-merge extension active?
    pub fn is_commutative(&self) -> bool {
        matches!(self, ProtocolKind::Commutative(_))
    }
}

/// Traffic-aware block→home placement. `Off` is the default and leaves
/// every gated counter bit-identical to a build without the feature;
/// `Remap` applies a schedule-guided overlay computed offline (e.g. by
/// `prescient-trace emit-remap`); `Online` migrates homes at phase
/// barriers driven by observed per-block consumer traffic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PlacementSpec {
    /// Blocks stay at their (possibly rotate-shifted) base-layout homes.
    #[default]
    Off,
    /// Apply an explicit block→home overlay before the first phase.
    Remap(HomeMap),
    /// Phase-boundary home migration with hysteresis thresholds.
    Online(PlacementConfig),
}

impl PlacementSpec {
    /// Is placement disabled?
    pub fn is_off(&self) -> bool {
        matches!(self, PlacementSpec::Off)
    }

    /// Parse a `PRESCIENT_PLACEMENT` value: `"off"`, `"online"`,
    /// `"online:MIN,PCT,CAP"`, or `"remap:PATH"` (the file is read and
    /// validated against `nodes` immediately — a missing or malformed
    /// remap file must fail the run, not silently measure `Off`).
    pub fn parse(s: &str, nodes: usize) -> Result<PlacementSpec, String> {
        let t = s.trim();
        match t.split_once(':') {
            None => match t {
                "off" => Ok(PlacementSpec::Off),
                "online" => Ok(PlacementSpec::Online(PlacementConfig::default())),
                _ => Err(format!(
                    "PRESCIENT_PLACEMENT: unknown mode {t:?} \
                     (expected \"off\", \"online[:MIN,PCT,CAP]\" or \"remap:PATH\")"
                )),
            },
            Some(("online", args)) => {
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return Err(format!(
                        "PRESCIENT_PLACEMENT: \"online:\" takes MIN,PCT,CAP, got {s:?}"
                    ));
                }
                let num = |what: &str, x: &str| -> Result<u64, String> {
                    x.parse::<u64>()
                        .map_err(|_| format!("PRESCIENT_PLACEMENT: bad {what} {x:?} in {s:?}"))
                };
                Ok(PlacementSpec::Online(PlacementConfig {
                    min_count: num("MIN", parts[0])?,
                    dominance_pct: num("PCT", parts[1])?,
                    max_per_window: num("CAP", parts[2])? as usize,
                }))
            }
            Some(("remap", path)) => {
                let text = std::fs::read_to_string(path.trim()).map_err(|e| {
                    format!("PRESCIENT_PLACEMENT: cannot read remap file {path:?}: {e}")
                })?;
                let map = HomeMap::parse(&text, nodes)
                    .map_err(|e| format!("PRESCIENT_PLACEMENT: remap file {path:?}: {e}"))?;
                Ok(PlacementSpec::Remap(map))
            }
            Some((k, _)) => Err(format!(
                "PRESCIENT_PLACEMENT: unknown mode {k:?} \
                 (expected \"off\", \"online[:MIN,PCT,CAP]\" or \"remap:PATH\"), got {s:?}"
            )),
        }
    }

    /// The `PRESCIENT_PLACEMENT` override, if set. Panics on an
    /// unparsable value — same loud-failure policy as the other
    /// environment knobs.
    pub fn from_env(nodes: usize) -> Option<PlacementSpec> {
        let v = std::env::var("PRESCIENT_PLACEMENT").ok()?;
        match PlacementSpec::parse(&v, nodes) {
            Ok(p) => Some(p),
            Err(e) => panic!("{e}"),
        }
    }
}

/// Which transport backend the machine's fabric runs on (see
/// `prescient_tempest::fabric::Transport`). Protocol behavior — and every
/// deterministic gate counter — is backend-independent; the backends
/// differ only in threading model and process topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// One channel and one protocol-handler thread per node (the original
    /// 2-threads-per-node model).
    Channel,
    /// `shards` shard loops multiplex all protocol handlers over
    /// per-shard inboxes; `0` picks a shard count from the host's
    /// available parallelism at machine build time. This is the backend
    /// that lets 32–256 emulated nodes scale on M cores.
    Sharded {
        /// Number of shard loops (`0` = auto).
        shards: usize,
    },
    /// In-process loopback socket pair: nodes `0..split` and `split..n`
    /// sit on opposite ends of a real TCP connection, with cross-split
    /// traffic framed through the wire codec. `0` splits the machine in
    /// half.
    SocketPair {
        /// First node of the upper half (`0` = `n/2`).
        split: usize,
    },
}

impl FabricKind {
    /// Parse a `PRESCIENT_FABRIC` value: `"channel"`, `"sharded"` /
    /// `"sharded:S"`, or `"socket"` / `"socket:SPLIT"`.
    pub fn parse(s: &str) -> Result<FabricKind, String> {
        let t = s.trim();
        let (kind, arg) = match t.split_once(':') {
            Some((k, a)) => (k.trim(), Some(a.trim())),
            None => (t, None),
        };
        let num = |what: &str, a: Option<&str>| -> Result<usize, String> {
            match a {
                None => Ok(0),
                Some(x) => x
                    .parse::<usize>()
                    .map_err(|_| format!("PRESCIENT_FABRIC: bad {what} {x:?} in {s:?}")),
            }
        };
        match kind {
            "channel" => match arg {
                None => Ok(FabricKind::Channel),
                Some(_) => {
                    Err(format!("PRESCIENT_FABRIC: \"channel\" takes no argument, got {s:?}"))
                }
            },
            "sharded" => Ok(FabricKind::Sharded { shards: num("shard count", arg)? }),
            "socket" => Ok(FabricKind::SocketPair { split: num("split", arg)? }),
            _ => Err(format!(
                "PRESCIENT_FABRIC: unknown backend {kind:?} \
                 (expected \"channel\", \"sharded[:S]\" or \"socket[:SPLIT]\"), got {s:?}"
            )),
        }
    }

    /// The `PRESCIENT_FABRIC` override, if set. Panics on an unparsable
    /// value — a backend-matrix CI job with a typo must fail, not
    /// silently measure the default backend.
    pub fn from_env() -> Option<FabricKind> {
        let v = std::env::var("PRESCIENT_FABRIC").ok()?;
        match FabricKind::parse(&v) {
            Ok(k) => Some(k),
            Err(e) => panic!("{e}"),
        }
    }

    /// The env override if present, else the channel backend.
    pub fn default_for_machine() -> FabricKind {
        FabricKind::from_env().unwrap_or(FabricKind::Channel)
    }
}

/// Configuration of one emulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of nodes (the paper's machine has 32).
    pub nodes: usize,
    /// Cache-block size in bytes (the paper sweeps 32–1024).
    pub block_size: usize,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Fabric fault injection; `None` (or an inactive plan) is a perfect
    /// fabric. Chaos tests use [`FaultPlan::chaos`].
    pub faults: Option<FaultPlan>,
    /// Compute-side request retry policy (timeouts matter only when the
    /// fabric can drop or delay messages).
    pub retry: RetryConfig,
    /// Run the whole-machine coherence check after every [`run`]
    /// (`crate::Machine::run`) returns; panics on violations. Cheap for
    /// test-sized machines, intended for chaos tests.
    pub validate: bool,
    /// Fabric egress aggregation policy. Constructors take the
    /// `PRESCIENT_BATCH` environment override when present (the CI chaos
    /// matrix forces batching on/off through it), else the fabric default;
    /// [`MachineConfig::with_batch`] pins it explicitly.
    pub batch: BatchConfig,
    /// Protocol event tracing. Constructors take the `PRESCIENT_TRACE`
    /// environment override when present (off otherwise — tracing is
    /// zero-cost when disabled); [`MachineConfig::with_trace`] pins it
    /// explicitly. On teardown a traced machine exports the merged event
    /// stream (see `crate::Machine`).
    pub trace: TraceConfig,
    /// Injected crash: "crash node n at phase-execution k" (fires at that
    /// phase's end, destroying its work). Constructors take the
    /// `PRESCIENT_CRASH` environment override (`"node@version"`) when
    /// present; [`MachineConfig::with_crash_plan`] pins it explicitly and
    /// enables checkpointing so the machine can recover.
    pub crash: Option<CrashPlan>,
    /// Barrier-consistent checkpointing: every `phase_begin` snapshots
    /// each node's protocol state so an injected crash rolls the machine
    /// back to the last completed barrier instead of dying. Off by
    /// default (zero overhead); enabled by
    /// [`MachineConfig::with_checkpoints`] or implicitly by a crash plan.
    pub checkpoints: bool,
    /// Liveness watchdog: convert infinite hangs (full partitions,
    /// stalled recoveries, protocol deadlocks) into a structured
    /// `MachineError` within a bounded wall-clock budget. `None` (the
    /// default) runs no monitor thread.
    pub watchdog: Option<WatchdogConfig>,
    /// Fabric transport backend. Constructors take the `PRESCIENT_FABRIC`
    /// environment override when present (the CI backend matrix selects
    /// backends through it), else the channel backend;
    /// [`MachineConfig::with_fabric`] pins it explicitly.
    pub fabric: FabricKind,
    /// Traffic-aware home placement. Constructors take the
    /// `PRESCIENT_PLACEMENT` environment override when present (off
    /// otherwise); [`MachineConfig::with_placement`] pins it explicitly.
    pub placement: PlacementSpec,
    /// Phase-granular metrics timeline. Constructors take the
    /// `PRESCIENT_METRICS` environment override when present (off
    /// otherwise — no hub, no cuts, no threads);
    /// [`MachineConfig::with_metrics`] pins it explicitly. Recording cuts
    /// bill no virtual time and send no messages, so every gated counter
    /// stays bit-identical with metrics off or on.
    pub metrics: MetricsConfig,
    /// Naive rotate-shift applied to the base block→home layout: block
    /// `b`'s view home becomes `(segment_home(b) + home_shift) % nodes`.
    /// `0` (the default) is the allocation-directed owner placement. The
    /// placement ablation uses a non-zero shift as its deliberately bad
    /// static layout for remap/migration to recover from.
    pub home_shift: u16,
}

impl MachineConfig {
    /// An unoptimized (plain Stache) machine.
    pub fn stache(nodes: usize, block_size: usize) -> MachineConfig {
        let crash = CrashPlan::from_env();
        MachineConfig {
            nodes,
            block_size,
            cost: CostModel::default(),
            protocol: ProtocolKind::Stache,
            faults: None,
            retry: RetryConfig::default(),
            validate: false,
            batch: BatchConfig::default_for_fabric(),
            trace: TraceConfig::default_for_machine(),
            crash,
            // A crash without a checkpoint is fatal; an env-injected crash
            // is meant to exercise recovery, so it brings checkpointing
            // along (as does `with_crash_plan`).
            checkpoints: crash.is_some(),
            watchdog: None,
            fabric: FabricKind::default_for_machine(),
            placement: PlacementSpec::from_env(nodes).unwrap_or_default(),
            metrics: MetricsConfig::default_for_machine(),
            home_shift: 0,
        }
    }

    /// An optimized (predictive protocol) machine.
    pub fn predictive(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            protocol: ProtocolKind::predictive(),
            ..MachineConfig::stache(nodes, block_size)
        }
    }

    /// A commutative-merge machine (plain Stache plus privatize-and-merge
    /// for the phases the application runs through `merge_exchange`).
    pub fn commutative(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            protocol: ProtocolKind::commutative(),
            ..MachineConfig::stache(nodes, block_size)
        }
    }

    /// Inject faults into the fabric.
    pub fn with_faults(mut self, plan: FaultPlan) -> MachineConfig {
        self.faults = Some(plan);
        self
    }

    /// Override the request retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> MachineConfig {
        self.retry = retry;
        self
    }

    /// Check coherence invariants after every run.
    pub fn validated(mut self) -> MachineConfig {
        self.validate = true;
        self
    }

    /// Pin the fabric's egress aggregation policy (overrides the
    /// environment default).
    pub fn with_batch(mut self, batch: BatchConfig) -> MachineConfig {
        self.batch = batch;
        self
    }

    /// Pin the tracing policy (overrides the environment default).
    pub fn with_trace(mut self, trace: TraceConfig) -> MachineConfig {
        self.trace = trace;
        self
    }

    /// Inject a crash (overrides the `PRESCIENT_CRASH` environment
    /// default) and enable the checkpointing that lets the machine
    /// recover from it.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> MachineConfig {
        self.crash = Some(plan);
        self.checkpoints = true;
        self
    }

    /// Enable or disable barrier-consistent checkpointing explicitly.
    pub fn with_checkpoints(mut self, on: bool) -> MachineConfig {
        self.checkpoints = on;
        self
    }

    /// Run the liveness watchdog with the given policy.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> MachineConfig {
        self.watchdog = Some(watchdog);
        self
    }

    /// Pin the fabric transport backend (overrides the environment
    /// default).
    pub fn with_fabric(mut self, fabric: FabricKind) -> MachineConfig {
        self.fabric = fabric;
        self
    }

    /// Pin the placement mode (overrides the environment default).
    pub fn with_placement(mut self, placement: PlacementSpec) -> MachineConfig {
        self.placement = placement;
        self
    }

    /// Pin the metrics policy (overrides the environment default).
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> MachineConfig {
        self.metrics = metrics;
        self
    }

    /// Rotate every block's view home by `shift` nodes (the placement
    /// ablation's deliberately traffic-oblivious static layout).
    pub fn with_home_shift(mut self, shift: u16) -> MachineConfig {
        self.home_shift = shift;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = MachineConfig::stache(4, 32);
        assert!(!u.protocol.is_predictive());
        assert!(u.faults.is_none());
        assert!(!u.validate);
        let o = MachineConfig::predictive(4, 32);
        assert!(o.protocol.is_predictive());
        assert_eq!(o.nodes, 4);
        assert_eq!(o.block_size, 32);
        let c = MachineConfig::commutative(4, 32);
        assert!(c.protocol.is_commutative());
        assert!(!c.protocol.is_predictive());
        assert!(!MachineConfig::stache(4, 32).protocol.is_commutative());
    }

    #[test]
    fn builders() {
        let c = MachineConfig::stache(4, 32).with_faults(FaultPlan::chaos(7)).validated();
        assert!(c.faults.expect("plan").is_active());
        assert!(c.validate);
        let c = c.with_batch(BatchConfig::off());
        assert!(!c.batch.is_batching());
        assert_eq!(
            MachineConfig::stache(2, 32).with_batch(BatchConfig::new(64)).batch.max_batch,
            64
        );
    }

    #[test]
    fn crash_plan_brings_checkpoints_along() {
        let c = MachineConfig::predictive(4, 32);
        assert!(c.crash.is_none());
        assert!(!c.checkpoints);
        assert!(c.watchdog.is_none());
        let c = c.with_crash_plan(CrashPlan::new(2, 3));
        assert_eq!(c.crash.expect("plan").node, 2);
        assert!(c.checkpoints, "a crash plan must enable recovery");
        let c = MachineConfig::stache(4, 32).with_checkpoints(true);
        assert!(c.checkpoints);
        let c = c.with_watchdog(WatchdogConfig::default());
        assert!(c.watchdog.is_some());
    }

    #[test]
    fn fabric_kind_parses_every_backend() {
        assert_eq!(FabricKind::parse("channel"), Ok(FabricKind::Channel));
        assert_eq!(FabricKind::parse("sharded"), Ok(FabricKind::Sharded { shards: 0 }));
        assert_eq!(FabricKind::parse("sharded:3"), Ok(FabricKind::Sharded { shards: 3 }));
        assert_eq!(FabricKind::parse("socket"), Ok(FabricKind::SocketPair { split: 0 }));
        assert_eq!(FabricKind::parse(" socket : 5 "), Ok(FabricKind::SocketPair { split: 5 }));
        let c = MachineConfig::stache(4, 32).with_fabric(FabricKind::Sharded { shards: 2 });
        assert_eq!(c.fabric, FabricKind::Sharded { shards: 2 });
    }

    // Satellite: malformed environment knobs must error loudly, never
    // silently fall back to a default — a CI matrix job with a typo in
    // `PRESCIENT_FABRIC`/`PRESCIENT_BATCH`/`PRESCIENT_CRASH` would
    // otherwise benchmark the wrong configuration and nobody would know.

    #[test]
    fn fabric_kind_rejects_garbage() {
        for bad in ["", "tcp", "sharded:x", "sharded:-1", "socket:half", "channel:2", "sharded:3:4"]
        {
            assert!(FabricKind::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn batch_config_rejects_garbage() {
        assert!(!BatchConfig::parse("off").expect("off").is_batching());
        assert!(!BatchConfig::parse("1").expect("1").is_batching());
        assert_eq!(BatchConfig::parse("64").expect("64").max_batch, 64);
        for bad in ["", "on", "64k", "-3", "8.5", "batch=8"] {
            assert!(BatchConfig::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn crash_plan_rejects_garbage() {
        assert_eq!(CrashPlan::parse(""), Ok(None));
        assert_eq!(CrashPlan::parse("off"), Ok(None));
        let p = CrashPlan::parse("2@5").expect("2@5").expect("some plan");
        assert_eq!((p.node, p.at_version), (2, 5));
        for bad in ["2", "@5", "2@", "x@5", "2@y", "2@5@7", "node2@5"] {
            assert!(CrashPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn placement_spec_parses_and_rejects_garbage() {
        assert!(PlacementSpec::parse("off", 4).expect("off").is_off());
        assert_eq!(
            PlacementSpec::parse("online", 4),
            Ok(PlacementSpec::Online(PlacementConfig::default()))
        );
        match PlacementSpec::parse("online: 4, 75, 128", 4).expect("online args") {
            PlacementSpec::Online(c) => {
                assert_eq!((c.min_count, c.dominance_pct, c.max_per_window), (4, 75, 128));
            }
            other => panic!("expected Online, got {other:?}"),
        }
        for bad in ["", "on", "remap", "online:4", "online:4,75", "online:x,75,128", "migrate:now"]
        {
            assert!(PlacementSpec::parse(bad, 4).is_err(), "{bad:?} must not parse");
        }
        // A remap pointing at a missing file fails loudly, not as Off.
        assert!(PlacementSpec::parse("remap:/no/such/remap.txt", 4).is_err());
    }

    #[test]
    fn placement_spec_remap_round_trips_through_a_file() {
        let mut map = HomeMap::new();
        map.insert(prescient_tempest::BlockId(7), 2);
        map.insert(prescient_tempest::BlockId(9), 0);
        let path = std::env::temp_dir().join(format!("prescient_remap_{}.txt", std::process::id()));
        std::fs::write(&path, map.to_text()).expect("write remap");
        let spec = PlacementSpec::parse(&format!("remap:{}", path.display()), 4).expect("parse");
        std::fs::remove_file(&path).ok();
        assert_eq!(spec, PlacementSpec::Remap(map));
        // A home out of range for the machine is rejected at load time.
        assert!(PlacementSpec::parse("remap:/no/such", 4).is_err());
        let cfg = MachineConfig::stache(4, 32).with_home_shift(1);
        assert_eq!(cfg.home_shift, 1);
        assert!(cfg.placement.is_off());
    }

    #[test]
    fn trace_config_rejects_garbage() {
        assert!(!TraceConfig::parse("off").expect("off").enabled);
        assert!(TraceConfig::parse("on").expect("on").enabled);
        assert!(TraceConfig::parse("4096").expect("4096").enabled);
        for bad in ["maybe", "-1", "4096x", "on,off"] {
            assert!(TraceConfig::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn metrics_config_rejects_garbage() {
        assert!(!MetricsConfig::parse("off").expect("off").enabled);
        assert!(MetricsConfig::parse("on").expect("on").enabled);
        let s = MetricsConfig::parse("stream:/tmp/run.jsonl").expect("stream");
        assert_eq!(s.stream.as_deref(), Some("/tmp/run.jsonl"));
        let t = MetricsConfig::parse("tcp:127.0.0.1:9100").expect("tcp");
        assert_eq!(t.tcp.as_deref(), Some("127.0.0.1:9100"));
        for bad in ["maybe", "2", "stream:", "tcp:", "tcp:noport", "udp:x:1", "on,stream:x"] {
            assert!(MetricsConfig::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let cfg = MachineConfig::stache(4, 32).with_metrics(MetricsConfig::on());
        assert!(cfg.metrics.enabled);
        assert!(!MachineConfig::stache(4, 32).metrics.enabled);
    }
}
