//! Machine configuration.

use prescient_core::PredictiveConfig;
use prescient_tempest::CostModel;

/// Which coherence protocol the machine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Plain Stache (write-invalidate). The `phase_begin`/`phase_end`
    /// directives degrade to the natural end-of-phase barrier — this is the
    /// paper's *unoptimized* configuration.
    Stache,
    /// Stache plus the predictive protocol: directives record schedules and
    /// pre-send data — the paper's *optimized* configuration.
    Predictive(PredictiveConfig),
}

impl ProtocolKind {
    /// Default optimized configuration.
    pub fn predictive() -> ProtocolKind {
        ProtocolKind::Predictive(PredictiveConfig::default())
    }

    /// Is the predictive protocol active?
    pub fn is_predictive(&self) -> bool {
        matches!(self, ProtocolKind::Predictive(_))
    }
}

/// Configuration of one emulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of nodes (the paper's machine has 32).
    pub nodes: usize,
    /// Cache-block size in bytes (the paper sweeps 32–1024).
    pub block_size: usize,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
}

impl MachineConfig {
    /// An unoptimized (plain Stache) machine.
    pub fn stache(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            nodes,
            block_size,
            cost: CostModel::default(),
            protocol: ProtocolKind::Stache,
        }
    }

    /// An optimized (predictive protocol) machine.
    pub fn predictive(nodes: usize, block_size: usize) -> MachineConfig {
        MachineConfig {
            nodes,
            block_size,
            cost: CostModel::default(),
            protocol: ProtocolKind::predictive(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = MachineConfig::stache(4, 32);
        assert!(!u.protocol.is_predictive());
        let o = MachineConfig::predictive(4, 32);
        assert!(o.protocol.is_predictive());
        assert_eq!(o.nodes, 4);
        assert_eq!(o.block_size, 32);
    }
}
