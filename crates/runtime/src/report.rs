//! Run reports: the paper's execution-time breakdown per node and machine.

use std::time::Duration;

use prescient_tempest::stats::StatsSnapshot;
use prescient_tempest::{NodeId, TimeBreakdown, WireSnapshot};

/// One node's contribution to a run.
#[derive(Debug, Clone, Copy)]
pub struct NodeReport {
    /// Node id.
    pub node: NodeId,
    /// Virtual-time breakdown (compute / wait / pre-send / synch).
    pub breakdown: TimeBreakdown,
    /// Protocol event counters for this run.
    pub stats: StatsSnapshot,
    /// Blocks pre-sent to this node but never accessed (redundant
    /// pre-sends, cumulative at run end).
    pub unused_presends: u64,
}

/// A whole-machine run report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node reports, indexed by node id.
    pub per_node: Vec<NodeReport>,
    /// Host wall-clock time of the run (diagnostic only; the figures use
    /// virtual time).
    pub wall: Duration,
    /// Wire-level transport counters for this run: batches on the fabric's
    /// channels and their mean occupancy (envelopes per batch). Like
    /// `wall`, timing-dependent — reported, never equality-gated.
    pub wire: WireSnapshot,
}

impl RunReport {
    /// The machine's execution time: the maximum node virtual time (all
    /// programs end with a barrier, so nodes agree up to the final stall).
    pub fn exec_time_ns(&self) -> u64 {
        self.per_node.iter().map(|n| n.breakdown.total_ns()).max().unwrap_or(0)
    }

    /// Machine-wide breakdown: per-segment *average* over nodes, so the
    /// segments sum to (roughly) the execution time, as in the paper's
    /// stacked bars.
    pub fn mean_breakdown(&self) -> TimeBreakdown {
        let n = self.per_node.len().max(1) as u64;
        let sum =
            self.per_node.iter().fold(TimeBreakdown::default(), |acc, r| acc.merge(&r.breakdown));
        TimeBreakdown {
            compute_ns: sum.compute_ns / n,
            wait_ns: sum.wait_ns / n,
            presend_ns: sum.presend_ns / n,
            synch_ns: sum.synch_ns / n,
        }
    }

    /// Machine-wide event totals.
    pub fn total_stats(&self) -> StatsSnapshot {
        self.per_node.iter().fold(StatsSnapshot::default(), |acc, r| acc.merge(&r.stats))
    }

    /// Fraction of shared accesses satisfied locally.
    pub fn local_fraction(&self) -> f64 {
        self.total_stats().local_fraction()
    }

    /// Render the paper-style stacked bar as a one-line summary:
    /// `total | wait / presend / compute+synch` in milliseconds of virtual
    /// time.
    pub fn bar_line(&self) -> String {
        let b = self.mean_breakdown();
        format!(
            "total {:>10.3} ms | remote-wait {:>10.3} | presend {:>9.3} | compute+synch {:>10.3}",
            self.exec_time_ns() as f64 / 1e6,
            b.wait_ns as f64 / 1e6,
            b.presend_ns as f64 / 1e6,
            b.compute_synch_ns() as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(breakdowns: Vec<TimeBreakdown>) -> RunReport {
        RunReport {
            per_node: breakdowns
                .into_iter()
                .enumerate()
                .map(|(i, b)| NodeReport {
                    node: i as NodeId,
                    breakdown: b,
                    stats: StatsSnapshot::default(),
                    unused_presends: 0,
                })
                .collect(),
            wall: Duration::from_millis(1),
            wire: WireSnapshot::default(),
        }
    }

    #[test]
    fn exec_time_is_max() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 0, presend_ns: 0, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 5, presend_ns: 0, synch_ns: 0 },
        ]);
        assert_eq!(r.exec_time_ns(), 35);
    }

    #[test]
    fn mean_breakdown_averages() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 2, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 0, presend_ns: 4, synch_ns: 8 },
        ]);
        let b = r.mean_breakdown();
        assert_eq!(b.compute_ns, 20);
        assert_eq!(b.wait_ns, 10);
        assert_eq!(b.presend_ns, 3);
        assert_eq!(b.synch_ns, 4);
    }

    #[test]
    fn bar_line_formats() {
        let r = report(vec![TimeBreakdown {
            compute_ns: 1_000_000,
            wait_ns: 2_000_000,
            presend_ns: 0,
            synch_ns: 0,
        }]);
        let line = r.bar_line();
        assert!(line.contains("remote-wait"));
        assert!(line.contains("3.000 ms"));
    }
}
