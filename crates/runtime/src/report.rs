//! Run reports: the paper's execution-time breakdown per node and machine.

use std::time::Duration;

use prescient_tempest::stats::StatsSnapshot;
use prescient_tempest::{NodeId, TimeBreakdown, WireSnapshot};

/// One node's contribution to a run.
#[derive(Debug, Clone, Copy)]
pub struct NodeReport {
    /// Node id.
    pub node: NodeId,
    /// Virtual-time breakdown (compute / wait / pre-send / synch).
    pub breakdown: TimeBreakdown,
    /// Protocol event counters for this run.
    pub stats: StatsSnapshot,
    /// Blocks pre-sent to this node but never accessed (redundant
    /// pre-sends, cumulative at run end).
    pub unused_presends: u64,
}

/// A whole-machine run report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node reports, indexed by node id.
    pub per_node: Vec<NodeReport>,
    /// Host wall-clock time of the run (diagnostic only; the figures use
    /// virtual time).
    pub wall: Duration,
    /// Wire-level transport counters for this run: batches on the fabric's
    /// channels and their mean occupancy (envelopes per batch). Like
    /// `wall`, timing-dependent — reported, never equality-gated.
    pub wire: WireSnapshot,
}

impl RunReport {
    /// The machine's execution time: the maximum node virtual time (all
    /// programs end with a barrier, so nodes agree up to the final stall).
    pub fn exec_time_ns(&self) -> u64 {
        self.per_node.iter().map(|n| n.breakdown.total_ns()).max().unwrap_or(0)
    }

    /// Machine-wide breakdown: per-segment *average* over nodes, so the
    /// segments sum to (roughly) the execution time, as in the paper's
    /// stacked bars.
    pub fn mean_breakdown(&self) -> TimeBreakdown {
        let n = self.per_node.len().max(1) as u64;
        let sum =
            self.per_node.iter().fold(TimeBreakdown::default(), |acc, r| acc.merge(&r.breakdown));
        TimeBreakdown {
            compute_ns: sum.compute_ns / n,
            wait_ns: sum.wait_ns / n,
            presend_ns: sum.presend_ns / n,
            synch_ns: sum.synch_ns / n,
        }
    }

    /// Machine-wide event totals.
    pub fn total_stats(&self) -> StatsSnapshot {
        self.per_node.iter().fold(StatsSnapshot::default(), |acc, r| acc.merge(&r.stats))
    }

    /// Total bytes moved over the fabric: demand-fetched data plus
    /// pre-sent data (the paper's "amount of data moved" metric).
    pub fn bytes_moved(&self) -> u64 {
        let t = self.total_stats();
        t.data_bytes_in + t.presend_bytes_out
    }

    /// Total blocks moved: demand misses plus pre-sent blocks.
    pub fn blocks_moved(&self) -> u64 {
        let t = self.total_stats();
        t.misses() + t.presend_blocks_out
    }

    /// Fraction of shared accesses satisfied locally.
    pub fn local_fraction(&self) -> f64 {
        self.total_stats().local_fraction()
    }

    /// The run's gated counters as JSON body lines, one key per line,
    /// each prefixed with `indent`; the last line has no trailing comma.
    /// This is the single source of truth for the perf gate's schema
    /// (DESIGN.md §8): `perf_gate` splices these lines verbatim into its
    /// per-app objects, so the keys CI diffs (`wall_ms`, `vtime_ns`,
    /// `msgs`, `bytes_moved`, `blocks_moved`, `misses`, `presend_blocks`,
    /// `presend_useless`, `wire_batches`, `wire_occupancy`, `wire_hist`,
    /// `checkpoints`, `checkpoint_bytes`, `recoveries`, `replays`,
    /// `migrations`, `forwards`, `remapped_blocks`, `local_pct`) are
    /// defined here exactly once. `wall_ms`, the `wire_*` keys and
    /// `wire_hist` are timing-dependent — reported, never equality-gated;
    /// the checkpoint/recovery counters (DESIGN.md §12) are
    /// fault-tolerance observability, likewise never equality-gated; the
    /// placement counters (DESIGN.md §14) are zero with placement off and
    /// describe the remap/migration activity when it is on, also never
    /// equality-gated.
    pub fn gate_counters_json(&self, indent: &str) -> String {
        use std::fmt::Write as _;
        let t = self.total_stats();
        let mut s = String::new();
        writeln!(s, "{indent}\"wall_ms\": {},", self.wall.as_millis()).unwrap();
        writeln!(s, "{indent}\"vtime_ns\": {},", self.exec_time_ns()).unwrap();
        writeln!(s, "{indent}\"msgs\": {},", t.msgs_out).unwrap();
        writeln!(s, "{indent}\"bytes_moved\": {},", self.bytes_moved()).unwrap();
        writeln!(s, "{indent}\"blocks_moved\": {},", self.blocks_moved()).unwrap();
        writeln!(s, "{indent}\"misses\": {},", t.misses()).unwrap();
        writeln!(s, "{indent}\"presend_blocks\": {},", t.presend_blocks_out).unwrap();
        writeln!(s, "{indent}\"presend_useless\": {},", t.presend_useless).unwrap();
        writeln!(s, "{indent}\"wire_batches\": {},", self.wire.batches).unwrap();
        writeln!(s, "{indent}\"wire_occupancy\": {:.2},", self.wire.mean_occupancy()).unwrap();
        write!(s, "{indent}\"wire_hist\": {{").unwrap();
        for (i, n) in self.wire.hist.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(s, "{sep}\"{}\": {n}", WireSnapshot::bucket_label(i)).unwrap();
        }
        writeln!(s, "}},").unwrap();
        writeln!(s, "{indent}\"checkpoints\": {},", t.checkpoints).unwrap();
        writeln!(s, "{indent}\"checkpoint_bytes\": {},", t.checkpoint_bytes).unwrap();
        writeln!(s, "{indent}\"recoveries\": {},", t.recoveries).unwrap();
        writeln!(s, "{indent}\"replays\": {},", t.replays).unwrap();
        writeln!(s, "{indent}\"migrations\": {},", t.migrations).unwrap();
        writeln!(s, "{indent}\"forwards\": {},", t.forwards).unwrap();
        writeln!(s, "{indent}\"remapped_blocks\": {},", t.remapped_blocks).unwrap();
        write!(s, "{indent}\"local_pct\": {:.2}", self.local_fraction() * 100.0).unwrap();
        s
    }

    /// The whole report as a JSON object: the gated counters, the
    /// machine-wide mean breakdown, every total counter, and the
    /// per-node breakdowns and counters.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn breakdown_json(b: &TimeBreakdown) -> String {
            format!(
                "{{\"compute_ns\": {}, \"wait_ns\": {}, \"presend_ns\": {}, \"synch_ns\": {}}}",
                b.compute_ns, b.wait_ns, b.presend_ns, b.synch_ns
            )
        }
        fn stats_json(st: &StatsSnapshot) -> String {
            let mut s = String::from("{");
            for (i, (name, v)) in st.fields().iter().enumerate() {
                use std::fmt::Write as _;
                let sep = if i == 0 { "" } else { ", " };
                write!(s, "{sep}\"{name}\": {v}").unwrap();
            }
            s.push('}');
            s
        }
        let mut s = String::new();
        writeln!(s, "{{").unwrap();
        // gate_counters_json ends on a comma-free line with no newline;
        // re-open the key list before appending the rest.
        writeln!(s, "{},", self.gate_counters_json("  ")).unwrap();
        writeln!(s, "  \"mean_breakdown\": {},", breakdown_json(&self.mean_breakdown())).unwrap();
        writeln!(s, "  \"totals\": {},", stats_json(&self.total_stats())).unwrap();
        writeln!(s, "  \"per_node\": [").unwrap();
        for (i, r) in self.per_node.iter().enumerate() {
            writeln!(s, "    {{").unwrap();
            writeln!(s, "      \"node\": {},", r.node).unwrap();
            writeln!(s, "      \"breakdown\": {},", breakdown_json(&r.breakdown)).unwrap();
            writeln!(s, "      \"unused_presends\": {},", r.unused_presends).unwrap();
            writeln!(s, "      \"stats\": {}", stats_json(&r.stats)).unwrap();
            writeln!(s, "    }}{}", if i + 1 < self.per_node.len() { "," } else { "" }).unwrap();
        }
        writeln!(s, "  ]").unwrap();
        writeln!(s, "}}").unwrap();
        s
    }

    /// Render the paper-style stacked bar as a one-line summary:
    /// `total | wait / presend / compute+synch` in milliseconds of virtual
    /// time.
    pub fn bar_line(&self) -> String {
        let b = self.mean_breakdown();
        format!(
            "total {:>10.3} ms | remote-wait {:>10.3} | presend {:>9.3} | compute+synch {:>10.3}",
            self.exec_time_ns() as f64 / 1e6,
            b.wait_ns as f64 / 1e6,
            b.presend_ns as f64 / 1e6,
            b.compute_synch_ns() as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(breakdowns: Vec<TimeBreakdown>) -> RunReport {
        RunReport {
            per_node: breakdowns
                .into_iter()
                .enumerate()
                .map(|(i, b)| NodeReport {
                    node: i as NodeId,
                    breakdown: b,
                    stats: StatsSnapshot::default(),
                    unused_presends: 0,
                })
                .collect(),
            wall: Duration::from_millis(1),
            wire: WireSnapshot::default(),
        }
    }

    #[test]
    fn exec_time_is_max() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 0, presend_ns: 0, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 5, presend_ns: 0, synch_ns: 0 },
        ]);
        assert_eq!(r.exec_time_ns(), 35);
    }

    #[test]
    fn mean_breakdown_averages() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 2, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 0, presend_ns: 4, synch_ns: 8 },
        ]);
        let b = r.mean_breakdown();
        assert_eq!(b.compute_ns, 20);
        assert_eq!(b.wait_ns, 10);
        assert_eq!(b.presend_ns, 3);
        assert_eq!(b.synch_ns, 4);
    }

    #[test]
    fn gate_counters_shape() {
        let r = report(vec![TimeBreakdown {
            compute_ns: 1_000_000,
            wait_ns: 0,
            presend_ns: 0,
            synch_ns: 0,
        }]);
        let j = r.gate_counters_json("      ");
        assert!(j.starts_with("      \"wall_ms\": "));
        assert!(j.contains("\"vtime_ns\": 1000000,"));
        assert!(j.contains("\"wire_hist\": {\"1\": 0, \"2\": 0,"));
        assert!(j.contains("\"checkpoints\": 0,"));
        assert!(j.contains("\"checkpoint_bytes\": 0,"));
        assert!(j.contains("\"recoveries\": 0,"));
        assert!(j.contains("\"replays\": 0,"));
        assert!(j.contains("\"migrations\": 0,"));
        assert!(j.contains("\"forwards\": 0,"));
        assert!(j.contains("\"remapped_blocks\": 0,"));
        // Last line: no trailing comma, no trailing newline.
        assert!(j.ends_with("\"local_pct\": 100.00"));
    }

    #[test]
    fn to_json_is_balanced() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 2, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 0, presend_ns: 4, synch_ns: 8 },
        ]);
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"per_node\": ["));
        assert!(j.contains("\"sched_records\": 0"));
        assert!(!j.contains(",\n  ]"), "no trailing comma before array close");
    }

    #[test]
    fn bar_line_formats() {
        let r = report(vec![TimeBreakdown {
            compute_ns: 1_000_000,
            wait_ns: 2_000_000,
            presend_ns: 0,
            synch_ns: 0,
        }]);
        let line = r.bar_line();
        assert!(line.contains("remote-wait"));
        assert!(line.contains("3.000 ms"));
    }
}
