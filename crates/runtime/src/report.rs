//! Run reports: the paper's execution-time breakdown per node and machine.

use std::time::Duration;

use prescient_tempest::socket::NodeRange;
use prescient_tempest::stats::StatsSnapshot;
use prescient_tempest::{NodeId, PhaseRecord, TimeBreakdown, WireSnapshot};

/// One node's contribution to a run.
#[derive(Debug, Clone, Copy)]
pub struct NodeReport {
    /// Node id.
    pub node: NodeId,
    /// Virtual-time breakdown (compute / wait / pre-send / synch).
    pub breakdown: TimeBreakdown,
    /// Protocol event counters for this run.
    pub stats: StatsSnapshot,
    /// Blocks pre-sent to this node but never accessed (redundant
    /// pre-sends, cumulative at run end).
    pub unused_presends: u64,
}

/// A whole-machine run report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node reports, indexed by node id.
    pub per_node: Vec<NodeReport>,
    /// Host wall-clock time of the run (diagnostic only; the figures use
    /// virtual time).
    pub wall: Duration,
    /// Wire-level transport counters for this run: batches on the fabric's
    /// channels and their mean occupancy (envelopes per batch). Like
    /// `wall`, timing-dependent — reported, never equality-gated.
    pub wire: WireSnapshot,
}

impl RunReport {
    /// The machine's execution time: the maximum node virtual time (all
    /// programs end with a barrier, so nodes agree up to the final stall).
    pub fn exec_time_ns(&self) -> u64 {
        self.per_node.iter().map(|n| n.breakdown.total_ns()).max().unwrap_or(0)
    }

    /// Machine-wide breakdown: per-segment *average* over nodes, so the
    /// segments sum to (roughly) the execution time, as in the paper's
    /// stacked bars.
    pub fn mean_breakdown(&self) -> TimeBreakdown {
        let n = self.per_node.len().max(1) as u64;
        let sum =
            self.per_node.iter().fold(TimeBreakdown::default(), |acc, r| acc.merge(&r.breakdown));
        TimeBreakdown {
            compute_ns: sum.compute_ns / n,
            wait_ns: sum.wait_ns / n,
            presend_ns: sum.presend_ns / n,
            synch_ns: sum.synch_ns / n,
        }
    }

    /// Machine-wide event totals.
    pub fn total_stats(&self) -> StatsSnapshot {
        self.per_node.iter().fold(StatsSnapshot::default(), |acc, r| acc.merge(&r.stats))
    }

    /// Total bytes moved over the fabric: demand-fetched data plus
    /// pre-sent data (the paper's "amount of data moved" metric).
    pub fn bytes_moved(&self) -> u64 {
        let t = self.total_stats();
        t.data_bytes_in + t.presend_bytes_out
    }

    /// Total blocks moved: demand misses plus pre-sent blocks.
    pub fn blocks_moved(&self) -> u64 {
        let t = self.total_stats();
        t.misses() + t.presend_blocks_out
    }

    /// Fraction of shared accesses satisfied locally.
    pub fn local_fraction(&self) -> f64 {
        self.total_stats().local_fraction()
    }

    /// The run's gated counters as JSON body lines, one key per line,
    /// each prefixed with `indent`; the last line has no trailing comma.
    /// This is the single source of truth for the perf gate's schema
    /// (DESIGN.md §8): `perf_gate` splices these lines verbatim into its
    /// per-app objects, so the keys CI diffs (`wall_ms`, `vtime_ns`,
    /// `msgs`, `bytes_moved`, `blocks_moved`, `misses`, `presend_blocks`,
    /// `presend_useless`, `wire_batches`, `wire_occupancy`, `wire_hist`,
    /// `checkpoints`, `checkpoint_bytes`, `recoveries`, `replays`,
    /// `migrations`, `forwards`, `remapped_blocks`, `local_pct`) are
    /// defined here exactly once. `wall_ms`, the `wire_*` keys and
    /// `wire_hist` are timing-dependent — reported, never equality-gated;
    /// the checkpoint/recovery counters (DESIGN.md §12) are
    /// fault-tolerance observability, likewise never equality-gated; the
    /// placement counters (DESIGN.md §14) are zero with placement off and
    /// describe the remap/migration activity when it is on, also never
    /// equality-gated.
    pub fn gate_counters_json(&self, indent: &str) -> String {
        use std::fmt::Write as _;
        let t = self.total_stats();
        let mut s = String::new();
        writeln!(s, "{indent}\"wall_ms\": {},", self.wall.as_millis()).unwrap();
        writeln!(s, "{indent}\"vtime_ns\": {},", self.exec_time_ns()).unwrap();
        writeln!(s, "{indent}\"msgs\": {},", t.msgs_out).unwrap();
        writeln!(s, "{indent}\"bytes_moved\": {},", self.bytes_moved()).unwrap();
        writeln!(s, "{indent}\"blocks_moved\": {},", self.blocks_moved()).unwrap();
        writeln!(s, "{indent}\"misses\": {},", t.misses()).unwrap();
        writeln!(s, "{indent}\"presend_blocks\": {},", t.presend_blocks_out).unwrap();
        writeln!(s, "{indent}\"presend_useless\": {},", t.presend_useless).unwrap();
        writeln!(s, "{indent}\"wire_batches\": {},", self.wire.batches).unwrap();
        writeln!(s, "{indent}\"wire_occupancy\": {:.2},", self.wire.mean_occupancy()).unwrap();
        write!(s, "{indent}\"wire_hist\": {{").unwrap();
        for (i, n) in self.wire.hist.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(s, "{sep}\"{}\": {n}", WireSnapshot::bucket_label(i)).unwrap();
        }
        writeln!(s, "}},").unwrap();
        writeln!(s, "{indent}\"checkpoints\": {},", t.checkpoints).unwrap();
        writeln!(s, "{indent}\"checkpoint_bytes\": {},", t.checkpoint_bytes).unwrap();
        writeln!(s, "{indent}\"recoveries\": {},", t.recoveries).unwrap();
        writeln!(s, "{indent}\"replays\": {},", t.replays).unwrap();
        writeln!(s, "{indent}\"migrations\": {},", t.migrations).unwrap();
        writeln!(s, "{indent}\"forwards\": {},", t.forwards).unwrap();
        writeln!(s, "{indent}\"remapped_blocks\": {},", t.remapped_blocks).unwrap();
        write!(s, "{indent}\"local_pct\": {:.2}", self.local_fraction() * 100.0).unwrap();
        s
    }

    /// The whole report as a JSON object: the gated counters, the
    /// machine-wide mean breakdown, every total counter, and the
    /// per-node breakdowns and counters.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn breakdown_json(b: &TimeBreakdown) -> String {
            format!(
                "{{\"compute_ns\": {}, \"wait_ns\": {}, \"presend_ns\": {}, \"synch_ns\": {}}}",
                b.compute_ns, b.wait_ns, b.presend_ns, b.synch_ns
            )
        }
        fn stats_json(st: &StatsSnapshot) -> String {
            let mut s = String::from("{");
            for (i, (name, v)) in st.fields().iter().enumerate() {
                use std::fmt::Write as _;
                let sep = if i == 0 { "" } else { ", " };
                write!(s, "{sep}\"{name}\": {v}").unwrap();
            }
            s.push('}');
            s
        }
        let mut s = String::new();
        writeln!(s, "{{").unwrap();
        // gate_counters_json ends on a comma-free line with no newline;
        // re-open the key list before appending the rest.
        writeln!(s, "{},", self.gate_counters_json("  ")).unwrap();
        writeln!(s, "  \"mean_breakdown\": {},", breakdown_json(&self.mean_breakdown())).unwrap();
        writeln!(s, "  \"totals\": {},", stats_json(&self.total_stats())).unwrap();
        writeln!(s, "  \"per_node\": [").unwrap();
        for (i, r) in self.per_node.iter().enumerate() {
            writeln!(s, "    {{").unwrap();
            writeln!(s, "      \"node\": {},", r.node).unwrap();
            writeln!(s, "      \"breakdown\": {},", breakdown_json(&r.breakdown)).unwrap();
            writeln!(s, "      \"unused_presends\": {},", r.unused_presends).unwrap();
            writeln!(s, "      \"stats\": {}", stats_json(&r.stats)).unwrap();
            writeln!(s, "    }}{}", if i + 1 < self.per_node.len() { "," } else { "" }).unwrap();
        }
        writeln!(s, "  ]").unwrap();
        writeln!(s, "}}").unwrap();
        s
    }

    /// Render the paper-style stacked bar as a one-line summary:
    /// `total | wait / presend / compute+synch` in milliseconds of virtual
    /// time.
    pub fn bar_line(&self) -> String {
        let b = self.mean_breakdown();
        format!(
            "total {:>10.3} ms | remote-wait {:>10.3} | presend {:>9.3} | compute+synch {:>10.3}",
            self.exec_time_ns() as f64 / 1e6,
            b.wait_ns as f64 / 1e6,
            b.presend_ns as f64 / 1e6,
            b.compute_synch_ns() as f64 / 1e6,
        )
    }
}

/// Aggregate of one `(run, phase, iter)` group across the nodes that
/// reported it: what the machine as a whole did in that phase instance.
#[derive(Debug, Clone, Default)]
pub struct PhaseGroup {
    /// 1-based `Machine::run` ordinal.
    pub run: u64,
    /// Phase id (0 = the gaps between phases).
    pub phase: u32,
    /// Iteration ordinal of this phase id within the run.
    pub iter: u64,
    /// Number of per-node records in the group.
    pub records: usize,
    /// Maximum per-node vtime delta (the phase instance's execution-time
    /// contribution, by the same max-over-nodes rule as
    /// [`RunReport::exec_time_ns`]).
    pub vtime_ns: u64,
    /// Sum of per-node vtime deltas, segment-wise.
    pub vtime: TimeBreakdown,
    /// Sum of per-node counter deltas.
    pub stats: StatsSnapshot,
    /// Sum of per-node fetch-latency histograms.
    pub fetch: prescient_tempest::LatencyHist,
    /// Wire delta (recorded by node 0 on the machine's behalf).
    pub wire: Option<WireSnapshot>,
}

impl PhaseGroup {
    /// Bytes moved in this phase instance (the gate metric's per-phase
    /// restriction).
    pub fn bytes_moved(&self) -> u64 {
        self.stats.data_bytes_in + self.stats.presend_bytes_out
    }

    /// Blocks moved in this phase instance.
    pub fn blocks_moved(&self) -> u64 {
        self.stats.misses() + self.stats.presend_blocks_out
    }
}

/// A whole machine's metrics timeline: every [`PhaseRecord`] its runs
/// cut, with the node range the records cover. Single-process machines
/// cover `0..nodes`; each side of a two-process socket run exports its
/// local range, and [`RunTimeline::merge`] reassembles the machine.
#[derive(Debug, Clone)]
pub struct RunTimeline {
    /// Total nodes in the (possibly multi-process) machine.
    pub nodes: usize,
    /// The contiguous node range this timeline's records cover.
    pub range: NodeRange,
    /// Every record, in hub push order.
    pub records: Vec<PhaseRecord>,
}

impl RunTimeline {
    /// A timeline covering the whole machine.
    pub fn new(nodes: usize, records: Vec<PhaseRecord>) -> RunTimeline {
        RunTimeline { nodes, range: NodeRange::new(0, nodes as u16), records }
    }

    /// A timeline covering one process's node range of a larger machine.
    pub fn with_range(nodes: usize, range: NodeRange, records: Vec<PhaseRecord>) -> RunTimeline {
        RunTimeline { nodes, range, records }
    }

    /// Counter totals over every record.
    pub fn totals(&self) -> StatsSnapshot {
        self.records.iter().fold(StatsSnapshot::default(), |acc, r| acc.merge(&r.stats))
    }

    /// The distinct run ordinals present, ascending.
    pub fn runs(&self) -> Vec<u64> {
        let mut rs: Vec<u64> = self.records.iter().map(|r| r.run).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// Group the records by `(run, phase, iter)` and aggregate each group
    /// across nodes, ordered by run, then first appearance (which follows
    /// the program's phase order — every node pushes its cut for a phase
    /// before any node can cut the next one, barriers being barriers).
    pub fn phases(&self) -> Vec<PhaseGroup> {
        let mut order: Vec<(u64, u32, u64)> = Vec::new();
        let mut groups: std::collections::HashMap<(u64, u32, u64), PhaseGroup> =
            std::collections::HashMap::new();
        for r in &self.records {
            let key = (r.run, r.phase, r.iter);
            let g = groups.entry(key).or_insert_with(|| {
                order.push(key);
                PhaseGroup { run: r.run, phase: r.phase, iter: r.iter, ..PhaseGroup::default() }
            });
            g.records += 1;
            g.vtime_ns = g.vtime_ns.max(r.vtime.total_ns());
            g.vtime = g.vtime.merge(&r.vtime);
            g.stats = g.stats.merge(&r.stats);
            g.fetch = g.fetch.merge(&r.fetch);
            if let Some(w) = &r.wire {
                g.wire = Some(g.wire.map_or(*w, |acc| acc.merge(w)));
            }
        }
        let mut out: Vec<PhaseGroup> = Vec::with_capacity(order.len());
        let mut keys = order;
        keys.sort_by_key(|k| k.0); // stable: run order first, appearance within
        for k in keys {
            out.push(groups.remove(&k).expect("grouped"));
        }
        out
    }

    /// Verify the telescoping-sum invariant against a run's report: for
    /// every node in this timeline's range, the sum of the node's record
    /// deltas for `run` must equal the report's per-node stats and vtime
    /// breakdown *exactly* (phase attribution may race the protocol
    /// thread; the sums cannot). Returns the first discrepancy.
    pub fn reconciles_with(&self, report: &RunReport, run: u64) -> Result<(), String> {
        for node in self.range.start..self.range.end() {
            let (mut stats, mut vtime) = (StatsSnapshot::default(), TimeBreakdown::default());
            let mut cuts = 0;
            for r in self.records.iter().filter(|r| r.run == run && r.node == node) {
                stats = stats.merge(&r.stats);
                vtime = vtime.merge(&r.vtime);
                cuts += 1;
            }
            if cuts == 0 {
                return Err(format!("node {node}: no records for run {run}"));
            }
            let rep = report
                .per_node
                .iter()
                .find(|n| n.node == node)
                .ok_or_else(|| format!("node {node}: missing from the run report"))?;
            for ((name, a), (_, b)) in stats.fields().iter().zip(rep.stats.fields()) {
                if *a != b {
                    return Err(format!(
                        "node {node} run {run}: {name} sums to {a} over {cuts} records, \
                         report says {b}"
                    ));
                }
            }
            if vtime != rep.breakdown {
                return Err(format!(
                    "node {node} run {run}: vtime sums to {vtime:?}, report says {:?}",
                    rep.breakdown
                ));
            }
        }
        Ok(())
    }

    /// Merge per-process timelines (from a multi-process socket run) into
    /// one. The parts must agree on the machine size and their ranges
    /// must partition `0..nodes` exactly — the same validation the socket
    /// handshake applies to the node ranges themselves.
    pub fn merge(mut parts: Vec<RunTimeline>) -> Result<RunTimeline, String> {
        let Some(first) = parts.first() else {
            return Err("merge of zero timelines".into());
        };
        let nodes = first.nodes;
        if parts.iter().any(|p| p.nodes != nodes) {
            return Err(format!(
                "timelines disagree on machine size: {:?}",
                parts.iter().map(|p| p.nodes).collect::<Vec<_>>()
            ));
        }
        parts.sort_by_key(|p| p.range.start);
        let mut expect = 0u16;
        for p in &parts {
            if p.range.start != expect {
                return Err(format!(
                    "node ranges do not partition 0..{nodes}: expected a range starting at \
                     {expect}, got {}..{}",
                    p.range.start,
                    p.range.end()
                ));
            }
            expect = p.range.end();
        }
        if expect as usize != nodes {
            return Err(format!("node ranges cover 0..{expect}, machine has {nodes} nodes"));
        }
        let mut records = Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        for p in &mut parts {
            records.append(&mut p.records);
        }
        Ok(RunTimeline::new(nodes, records))
    }

    /// The timeline as JSON: a header (machine size + node range), every
    /// record verbatim in the stream's line format (so the stream and the
    /// timeline are textually comparable record-for-record), the
    /// `(run, phase, iter)` aggregates under the gate metrics' names, and
    /// the counter totals in the run report's schema.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "{{").unwrap();
        writeln!(s, "\"nodes\": {},", self.nodes).unwrap();
        writeln!(s, "\"range_start\": {},", self.range.start).unwrap();
        writeln!(s, "\"range_len\": {},", self.range.len).unwrap();
        writeln!(s, "\"records\": [").unwrap();
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            writeln!(s, "{}{sep}", r.to_json_line()).unwrap();
        }
        writeln!(s, "],").unwrap();
        writeln!(s, "\"phases\": [").unwrap();
        let phases = self.phases();
        for (i, g) in phases.iter().enumerate() {
            let w = g.wire.unwrap_or_default();
            write!(
                s,
                "{{\"run\": {}, \"phase\": {}, \"iter\": {}, \"cuts\": {}, \
                 \"vtime_ns\": {}, \"msgs\": {}, \"bytes_moved\": {}, \"blocks_moved\": {}, \
                 \"misses\": {}, \"presend_blocks\": {}, \"presend_useless\": {}, \
                 \"fetch_mean_ns\": {:.0}, \"wire_batches\": {}, \"wire_occupancy\": {:.2}}}",
                g.run,
                g.phase,
                g.iter,
                g.records,
                g.vtime_ns,
                g.stats.msgs_out,
                g.bytes_moved(),
                g.blocks_moved(),
                g.stats.misses(),
                g.stats.presend_blocks_out,
                g.stats.presend_useless,
                g.fetch.mean_ns(),
                w.batches,
                w.mean_occupancy(),
            )
            .unwrap();
            writeln!(s, "{}", if i + 1 < phases.len() { "," } else { "" }).unwrap();
        }
        writeln!(s, "],").unwrap();
        let mut totals = String::from("{");
        for (i, (name, v)) in self.totals().fields().iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(totals, "{sep}\"{name}\": {v}").unwrap();
        }
        totals.push('}');
        writeln!(s, "\"totals\": {totals}").unwrap();
        writeln!(s, "}}").unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(breakdowns: Vec<TimeBreakdown>) -> RunReport {
        RunReport {
            per_node: breakdowns
                .into_iter()
                .enumerate()
                .map(|(i, b)| NodeReport {
                    node: i as NodeId,
                    breakdown: b,
                    stats: StatsSnapshot::default(),
                    unused_presends: 0,
                })
                .collect(),
            wall: Duration::from_millis(1),
            wire: WireSnapshot::default(),
        }
    }

    #[test]
    fn exec_time_is_max() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 0, presend_ns: 0, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 5, presend_ns: 0, synch_ns: 0 },
        ]);
        assert_eq!(r.exec_time_ns(), 35);
    }

    #[test]
    fn mean_breakdown_averages() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 2, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 0, presend_ns: 4, synch_ns: 8 },
        ]);
        let b = r.mean_breakdown();
        assert_eq!(b.compute_ns, 20);
        assert_eq!(b.wait_ns, 10);
        assert_eq!(b.presend_ns, 3);
        assert_eq!(b.synch_ns, 4);
    }

    #[test]
    fn gate_counters_shape() {
        let r = report(vec![TimeBreakdown {
            compute_ns: 1_000_000,
            wait_ns: 0,
            presend_ns: 0,
            synch_ns: 0,
        }]);
        let j = r.gate_counters_json("      ");
        assert!(j.starts_with("      \"wall_ms\": "));
        assert!(j.contains("\"vtime_ns\": 1000000,"));
        assert!(j.contains("\"wire_hist\": {\"1\": 0, \"2\": 0,"));
        assert!(j.contains("\"checkpoints\": 0,"));
        assert!(j.contains("\"checkpoint_bytes\": 0,"));
        assert!(j.contains("\"recoveries\": 0,"));
        assert!(j.contains("\"replays\": 0,"));
        assert!(j.contains("\"migrations\": 0,"));
        assert!(j.contains("\"forwards\": 0,"));
        assert!(j.contains("\"remapped_blocks\": 0,"));
        // Last line: no trailing comma, no trailing newline.
        assert!(j.ends_with("\"local_pct\": 100.00"));
    }

    #[test]
    fn to_json_is_balanced() {
        let r = report(vec![
            TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 2, synch_ns: 0 },
            TimeBreakdown { compute_ns: 30, wait_ns: 0, presend_ns: 4, synch_ns: 8 },
        ]);
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"per_node\": ["));
        assert!(j.contains("\"sched_records\": 0"));
        assert!(!j.contains(",\n  ]"), "no trailing comma before array close");
    }

    #[test]
    fn bar_line_formats() {
        let r = report(vec![TimeBreakdown {
            compute_ns: 1_000_000,
            wait_ns: 2_000_000,
            presend_ns: 0,
            synch_ns: 0,
        }]);
        let line = r.bar_line();
        assert!(line.contains("remote-wait"));
        assert!(line.contains("3.000 ms"));
    }

    fn rec(node: NodeId, seq: u64, phase: u32, iter: u64, msgs: u64, wait: u64) -> PhaseRecord {
        PhaseRecord {
            node,
            seq,
            run: 1,
            phase,
            iter,
            version: seq,
            vtime: TimeBreakdown { compute_ns: 0, wait_ns: wait, presend_ns: 0, synch_ns: 0 },
            stats: StatsSnapshot { msgs_out: msgs, ..StatsSnapshot::default() },
            fetch: prescient_tempest::LatencyHist::default(),
            wire: None,
        }
    }

    #[test]
    fn timeline_phases_group_in_program_order() {
        // Two nodes, two iterations of phase 7, with gap cuts interleaved.
        let records = vec![
            rec(0, 0, 0, 0, 1, 10),
            rec(1, 0, 0, 0, 1, 12),
            rec(0, 1, 7, 0, 3, 20),
            rec(1, 1, 7, 0, 4, 25),
            rec(0, 2, 7, 1, 5, 30),
            rec(1, 2, 7, 1, 6, 15),
        ];
        let t = RunTimeline::new(2, records);
        let phases = t.phases();
        assert_eq!(phases.len(), 3);
        assert_eq!((phases[0].phase, phases[0].iter), (0, 0));
        assert_eq!((phases[1].phase, phases[1].iter), (7, 0));
        assert_eq!((phases[2].phase, phases[2].iter), (7, 1));
        assert_eq!(phases[1].records, 2);
        assert_eq!(phases[1].stats.msgs_out, 7);
        // vtime_ns is the max-over-nodes delta, vtime the sum.
        assert_eq!(phases[2].vtime_ns, 30);
        assert_eq!(phases[2].vtime.wait_ns, 45);
        assert_eq!(t.totals().msgs_out, 20);
        assert_eq!(t.runs(), vec![1]);
    }

    #[test]
    fn timeline_reconciles_exactly_and_flags_drift() {
        let records = vec![rec(0, 0, 0, 0, 2, 5), rec(0, 1, 7, 0, 3, 10)];
        let t = RunTimeline::new(1, records);
        let mut rep =
            report(vec![TimeBreakdown { compute_ns: 0, wait_ns: 15, presend_ns: 0, synch_ns: 0 }]);
        rep.per_node[0].stats.msgs_out = 5;
        assert!(t.reconciles_with(&rep, 1).is_ok());
        // Any counter off by one is a loud, named failure.
        rep.per_node[0].stats.msgs_out = 6;
        let err = t.reconciles_with(&rep, 1).unwrap_err();
        assert!(err.contains("msgs_out"), "got: {err}");
        // A run with no records is also a failure, not a vacuous pass.
        assert!(t.reconciles_with(&rep, 9).is_err());
    }

    #[test]
    fn timeline_merge_requires_a_partition() {
        let nodes = 4;
        let lo = RunTimeline::with_range(nodes, NodeRange::new(0, 2), vec![rec(0, 0, 0, 0, 1, 1)]);
        let hi = RunTimeline::with_range(nodes, NodeRange::new(2, 2), vec![rec(2, 0, 0, 0, 2, 1)]);
        let merged = RunTimeline::merge(vec![hi.clone(), lo.clone()]).unwrap();
        assert_eq!(merged.range, NodeRange::new(0, 4));
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.totals().msgs_out, 3);
        // A gap in the ranges is rejected.
        let gap = RunTimeline::with_range(nodes, NodeRange::new(3, 1), vec![]);
        assert!(RunTimeline::merge(vec![lo.clone(), gap]).is_err());
        // Disagreeing machine sizes are rejected.
        let other = RunTimeline::with_range(8, NodeRange::new(2, 6), vec![]);
        assert!(RunTimeline::merge(vec![lo, other]).is_err());
        assert!(RunTimeline::merge(vec![]).is_err());
    }

    #[test]
    fn timeline_json_embeds_stream_lines_verbatim() {
        let r0 = rec(0, 0, 7, 0, 3, 20);
        let line = r0.to_json_line();
        let t = RunTimeline::new(1, vec![r0]);
        let j = t.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains(&line), "record line must appear verbatim in the timeline");
        assert!(j.contains("\"nodes\": 1,"));
        assert!(j.contains("\"range_start\": 0,"));
        assert!(j.contains("\"phases\": ["));
        assert!(j.contains("\"totals\": {"));
        assert!(j.contains("\"msgs_out\": 3"));
    }
}
