//! # prescient-runtime
//!
//! The data-parallel runtime beneath C\*\*-style programs: it assembles an
//! emulated multi-node machine over the Tempest substrate, runs SPMD
//! compute threads against the Stache/predictive coherence protocols, and
//! exposes the abstractions the compiler targets:
//!
//! * [`Machine`] — builds the fabric, nodes (two threads each: compute +
//!   protocol handler), and the chosen protocol; runs SPMD programs and
//!   collects the per-node execution-time breakdown of the paper's figures;
//! * [`NodeCtx`] — the per-node view inside a program: typed shared-memory
//!   access with fine-grain access-control checks and fault handling,
//!   virtual-time charging, barriers, reductions, local allocation, and the
//!   two compiler directives `phase_begin` / `phase_end` that drive the
//!   predictive protocol;
//! * [`agg`] — distributed aggregates (1-D and 2-D arrays of primitives)
//!   with the block / row-block / tiled computation distributions of §4.1;
//! * [`report`] — run reports mirroring the paper's stacked bars (remote
//!   data wait / predictive protocol / compute + synch);
//! * [`recovery`] — crash faults, barrier-consistent checkpoint/rollback,
//!   and the liveness watchdog that converts hangs into structured
//!   [`MachineError`]s (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod config;
pub mod ctx;
pub mod machine;
pub mod recovery;
pub mod report;

pub use agg::{Agg1D, Agg2D, Dist1D, Dist2D};
pub use config::{FabricKind, MachineConfig, PlacementSpec, ProtocolKind};
pub use ctx::{NodeCtx, PhaseOutcome};
pub use machine::Machine;
pub use recovery::{
    Checkpoint, CheckpointStore, FailureKind, MachineError, NodeErrorState, RecoveryCtl,
    WatchdogConfig,
};
pub use report::{NodeReport, PhaseGroup, RunReport, RunTimeline};
