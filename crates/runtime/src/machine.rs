//! The emulated machine: node assembly, SPMD execution, reduction scratch.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_core::{AccessTap, Predictive};
use prescient_stache::{spawn_protocol, Msg, NoHooks, NodeShared, Wake};
use prescient_tempest::fabric::{Fabric, FabricCtl};
use prescient_tempest::trace::{merge, to_chrome_json, to_jsonl};
use prescient_tempest::{FaultStats, GAddr, GlobalLayout, NodeId, TraceEvent, Tracer, VBarrier};

use crate::config::{MachineConfig, ProtocolKind};
use crate::ctx::NodeCtx;
use crate::report::{NodeReport, RunReport};

/// Scratch space for runtime reductions (a C\*\* language feature, handled
/// outside the coherence protocol — §1 notes reductions are not a
/// predictive-protocol target).
pub(crate) struct ReduceScratch {
    pub(crate) state: Mutex<ReduceState>,
}

pub(crate) struct ReduceState {
    /// Round whose contribution slots are currently valid.
    pub(crate) zeroed_round: u64,
    /// One contribution vector per node; summed in node order at read-out
    /// so the reduction is deterministic regardless of arrival order.
    pub(crate) contrib: Vec<Vec<f64>>,
}

/// An emulated multi-node machine.
///
/// Protocol-handler threads persist for the machine's lifetime; each
/// [`Machine::run`] call spawns fresh compute threads executing the given
/// SPMD program.
pub struct Machine {
    cfg: MachineConfig,
    layout: GlobalLayout,
    shareds: Vec<Arc<NodeShared>>,
    preds: Option<Vec<Arc<Predictive>>>,
    wake_rxs: Vec<Option<Receiver<Wake>>>,
    barrier: Arc<VBarrier>,
    reduce: Arc<ReduceScratch>,
    fault_stats: Option<Arc<FaultStats>>,
    ctl: Arc<FabricCtl>,
    tracers: Vec<Tracer>,
    joins: Vec<JoinHandle<()>>,
}

impl Machine {
    /// Build a machine: fabric, per-node state, and protocol threads.
    pub fn new(cfg: MachineConfig) -> Machine {
        let layout = GlobalLayout::new(cfg.nodes, cfg.block_size);
        let mut shareds = Vec::with_capacity(cfg.nodes);
        let mut wake_rxs = Vec::with_capacity(cfg.nodes);
        let mut joins = Vec::with_capacity(cfg.nodes);
        let mut preds = match cfg.protocol {
            ProtocolKind::Predictive(_) => Some(Vec::with_capacity(cfg.nodes)),
            ProtocolKind::Stache => None,
        };
        let (endpoints, fault_stats) = match cfg.faults {
            Some(plan) if plan.is_active() => {
                let (eps, fs) = Fabric::new_faulty_with::<Msg>(cfg.nodes, plan, cfg.batch);
                (eps, Some(fs))
            }
            _ => (Fabric::new_with::<Msg>(cfg.nodes, cfg.batch), None),
        };
        let ctl = endpoints[0].ctl().clone();
        let mut tracers = Vec::with_capacity(cfg.nodes);
        for (i, mut ep) in endpoints.into_iter().enumerate() {
            // The tracer must land on the endpoint *before* its `Net` is
            // cloned into `NodeShared` — both the compute and protocol
            // sides reach the tracer through that clone.
            let tracer = Tracer::for_node(cfg.trace, i as NodeId);
            ep.set_tracer(tracer.clone());
            tracers.push(tracer);
            let (wake_tx, wake_rx) = unbounded();
            let shared = Arc::new(NodeShared::new_with_retry(
                layout,
                cfg.cost,
                ep.net().clone(),
                wake_tx,
                cfg.retry,
            ));
            let join = match cfg.protocol {
                ProtocolKind::Predictive(pcfg) => {
                    let pred = Arc::new(Predictive::new(pcfg));
                    let j = spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&pred) as _);
                    preds.as_mut().expect("predictive mode").push(pred);
                    j
                }
                ProtocolKind::Stache => spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)),
            };
            shareds.push(shared);
            wake_rxs.push(Some(wake_rx));
            joins.push(join);
        }
        Machine {
            cfg,
            layout,
            shareds,
            preds,
            wake_rxs,
            barrier: Arc::new(VBarrier::new(cfg.nodes)),
            reduce: Arc::new(ReduceScratch {
                state: Mutex::new(ReduceState {
                    zeroed_round: 0,
                    contrib: vec![Vec::new(); cfg.nodes],
                }),
            }),
            fault_stats,
            ctl,
            tracers,
            joins,
        }
    }

    /// Drain every node's trace ring and merge the streams by virtual
    /// time. Returns the merged events plus the total number of events
    /// lost to ring wrap-around. Empty when tracing is disabled. Only
    /// meaningful between runs, when the machine is quiescent; drains are
    /// non-destructive, so calling this does not disturb the teardown
    /// export.
    pub fn trace_events(&self) -> (Vec<TraceEvent>, u64) {
        let dumps: Vec<_> = self.tracers.iter().filter_map(|t| t.drain()).collect();
        merge(dumps)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The address-space layout.
    pub fn layout(&self) -> GlobalLayout {
        self.layout
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Per-link fault counters, when the machine runs a faulty fabric.
    pub fn fault_stats(&self) -> Option<&Arc<FaultStats>> {
        self.fault_stats.as_ref()
    }

    /// Allocate `bytes` of shared memory homed at `node` (driver-side
    /// allocation, before or between runs).
    pub fn alloc_on(&self, node: NodeId, bytes: u64, align: u64) -> GAddr {
        self.shareds[node as usize].mem.lock().alloc(bytes, align)
    }

    /// The predictive-protocol state of `node`, if the machine runs the
    /// predictive protocol (used for manual schedules and diagnostics).
    pub fn predictive(&self, node: NodeId) -> Option<&Arc<Predictive>> {
        self.preds.as_ref().map(|p| &p[node as usize])
    }

    /// Install a schedule-oracle recording tap on every node's predictive
    /// protocol (no-op under plain Stache, returning `false`). The tap
    /// observes every home-node request regardless of the protocol's
    /// recording state; remove it with [`Machine::remove_tap`].
    pub fn install_tap(&self, tap: &Arc<AccessTap>) -> bool {
        let Some(preds) = self.preds.as_ref() else { return false };
        for p in preds {
            p.set_tap(Some(Arc::clone(tap)));
        }
        true
    }

    /// Remove a previously installed recording tap from every node.
    pub fn remove_tap(&self) {
        if let Some(preds) = self.preds.as_ref() {
            for p in preds {
                p.set_tap(None);
            }
        }
    }

    /// Verify all coherence invariants (single writer / valid sharers /
    /// data agreement — see `prescient_stache::check`). Only meaningful
    /// between runs, when the machine is quiescent. Panics with the list
    /// of violations if any invariant is broken.
    pub fn assert_coherent(&self) {
        let violations = prescient_stache::check_coherence(&self.shareds);
        assert!(violations.is_empty(), "coherence violations: {violations:#?}");
    }

    /// Run an SPMD program: `f` executes concurrently on every node's
    /// compute thread. Returns each node's result plus the run report with
    /// the paper's time breakdown.
    pub fn run<R, F>(&mut self, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        let wall_start = Instant::now();
        let stats0: Vec<_> = self.shareds.iter().map(|s| s.stats.snapshot()).collect();
        let wire0 = self.ctl.wire();
        let rxs: Vec<Receiver<Wake>> =
            self.wake_rxs.iter_mut().map(|o| o.take().expect("machine already running")).collect();

        let mut out: Vec<(R, prescient_tempest::TimeBreakdown, Receiver<Wake>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = rxs
                    .into_iter()
                    .enumerate()
                    .map(|(i, rx)| {
                        let f = &f;
                        let shared = Arc::clone(&self.shareds[i]);
                        let pred = self.preds.as_ref().map(|p| Arc::clone(&p[i]));
                        let barrier = Arc::clone(&self.barrier);
                        let reduce = Arc::clone(&self.reduce);
                        scope.spawn(move || {
                            let mut ctx = NodeCtx::new(shared, pred, rx, barrier, reduce);
                            let r = f(&mut ctx);
                            let (breakdown, rx) = ctx.finish();
                            (r, breakdown, rx)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("compute thread panicked")).collect()
            });

        if self.cfg.validate {
            // All compute threads have joined and every fetch/pre-send
            // completed, so the machine is quiescent (straggler duplicates
            // still parked in the fault layer cannot change protocol state
            // — the handlers reject them by seqno/op/epoch).
            self.assert_coherent();
        }

        let mut results = Vec::with_capacity(out.len());
        let mut per_node = Vec::with_capacity(out.len());
        for (i, (r, breakdown, rx)) in out.drain(..).enumerate() {
            self.wake_rxs[i] = Some(rx);
            results.push(r);
            let stats = self.shareds[i].stats.snapshot();
            per_node.push(NodeReport {
                node: i as NodeId,
                breakdown,
                stats: stats.sub(&stats0[i]),
                unused_presends: self.shareds[i].mem.lock().unused_presends() as u64,
            });
        }
        (
            results,
            RunReport { per_node, wall: wall_start.elapsed(), wire: self.ctl.wire().sub(&wire0) },
        )
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        // Signal teardown before the shutdown messages fan out: any
        // in-flight traffic addressed to a node whose handler has already
        // exited is legitimate teardown loss from here on.
        self.ctl.mark_closing();
        for s in &self.shareds {
            s.send(s.me, Msg::Shutdown);
            // The shutdown self-send goes straight on the wire, but any
            // stragglers still parked in this node's egress should too.
            s.flush_net();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        // With every thread joined the rings are quiescent: export the
        // merged event stream. `PRESCIENT_TRACE_OUT` overrides the output
        // basename (default `trace` → `trace.json` + `trace.jsonl`).
        if self.tracers.iter().any(Tracer::on) {
            let (events, dropped) = self.trace_events();
            if dropped > 0 {
                eprintln!("prescient: trace rings wrapped, {dropped} events lost");
            }
            let base = std::env::var("PRESCIENT_TRACE_OUT").unwrap_or_else(|_| "trace".into());
            let chrome = to_chrome_json(&events);
            let jsonl = to_jsonl(&events);
            if let Err(e) = std::fs::write(format!("{base}.json"), chrome)
                .and_then(|()| std::fs::write(format!("{base}.jsonl"), jsonl))
            {
                eprintln!("prescient: trace export to {base}.json[l] failed: {e}");
            }
        }
    }
}
