//! The emulated machine: node assembly, SPMD execution, reduction scratch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_core::{AccessTap, Commute, Predictive};
use prescient_stache::{
    spawn_protocol, spawn_protocol_shard, Hooks, Msg, NoHooks, NodeShared, Wake,
};
use prescient_tempest::fabric::{Endpoint, Fabric, FabricCtl, ShardEndpoint};
use prescient_tempest::socket::{self, SocketGuard};
use prescient_tempest::trace::{merge, to_chrome_json, to_jsonl};
use prescient_tempest::{
    Aborted, FaultStats, GAddr, GlobalLayout, HomeMap, HomeView, MetricsHub, MetricsServer, NodeId,
    TraceEvent, Tracer, VBarrier,
};

use crate::config::{FabricKind, MachineConfig, PlacementSpec, ProtocolKind};
use crate::ctx::{MetricsInit, NodeCtx};
use crate::recovery::{
    CheckpointStore, ErrorSlot, FailureKind, MachineError, NodeErrorState, RecoveryCtl, Watchdog,
};
use crate::report::{NodeReport, RunReport, RunTimeline};

/// Scratch space for runtime reductions (a C\*\* language feature, handled
/// outside the coherence protocol — §1 notes reductions are not a
/// predictive-protocol target).
pub(crate) struct ReduceScratch {
    pub(crate) state: Mutex<ReduceState>,
}

pub(crate) struct ReduceState {
    /// Round whose contribution slots are currently valid.
    pub(crate) zeroed_round: u64,
    /// One contribution vector per node; summed in node order at read-out
    /// so the reduction is deterministic regardless of arrival order.
    pub(crate) contrib: Vec<Vec<f64>>,
}

/// An emulated multi-node machine.
///
/// Protocol-handler threads persist for the machine's lifetime; each
/// [`Machine::run`] call spawns fresh compute threads executing the given
/// SPMD program.
pub struct Machine {
    cfg: MachineConfig,
    layout: GlobalLayout,
    shareds: Vec<Arc<NodeShared>>,
    preds: Option<Vec<Arc<Predictive>>>,
    commutes: Option<Vec<Arc<Commute>>>,
    wake_rxs: Vec<Option<Receiver<Wake>>>,
    barrier: Arc<VBarrier>,
    reduce: Arc<ReduceScratch>,
    fault_stats: Option<Arc<FaultStats>>,
    ctl: Arc<FabricCtl>,
    tracers: Vec<Tracer>,
    joins: Vec<JoinHandle<()>>,
    /// Crash flag + crash-plan latch; machine-lifetime, so a plan fires at
    /// most once even across multiple [`Machine::run`] calls.
    recovery: Arc<RecoveryCtl>,
    /// Per-node checkpoint slots (empty until a checkpointed phase runs).
    ckpts: Arc<CheckpointStore>,
    /// Metrics runtime: the hub plus its optional publisher/exposition
    /// threads. `None` when metrics are off.
    metrics: Option<MetricsRt>,
    /// Socket-backend teardown guard: joins the reader threads and closes
    /// the streams. Held last so it drops after the `Drop` body has joined
    /// the protocol threads (which may still be flushing onto the wire).
    _socket: Option<SocketGuard>,
}

/// The machine side of the metrics subsystem: the record hub shared with
/// every node, the background JSONL publisher (when `stream:` is
/// configured), the Prometheus TCP endpoint (when `tcp:` is configured),
/// and the machine-lifetime run counter.
struct MetricsRt {
    hub: Arc<MetricsHub>,
    publisher: Option<JoinHandle<()>>,
    server: Option<MetricsServer>,
    stream_path: Option<String>,
    runs: u64,
}

/// The per-backend endpoint set a machine's fabric produced.
enum Built {
    /// One endpoint (and one protocol thread) per node.
    PerNode(Vec<Endpoint<Msg>>),
    /// One endpoint (and one protocol thread) per shard.
    Sharded(Vec<ShardEndpoint<Msg>>),
}

/// Shard count for `FabricKind::Sharded { shards: 0 }`: half the host's
/// parallelism — the compute threads need the other half — but at least
/// one and at most one shard per node.
fn auto_shards(nodes: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
    (cores / 2).clamp(1, nodes)
}

impl Machine {
    /// Build a machine: fabric, per-node state, and protocol threads.
    pub fn new(cfg: MachineConfig) -> Machine {
        let layout = GlobalLayout::new(cfg.nodes, cfg.block_size);
        let mut shareds = Vec::with_capacity(cfg.nodes);
        let mut wake_rxs = Vec::with_capacity(cfg.nodes);
        let mut joins = Vec::with_capacity(cfg.nodes);
        let mut preds = match cfg.protocol {
            ProtocolKind::Predictive(_) => Some(Vec::with_capacity(cfg.nodes)),
            ProtocolKind::Stache | ProtocolKind::Commutative(_) => None,
        };
        let mut commutes = match cfg.protocol {
            ProtocolKind::Commutative(_) => Some(Vec::with_capacity(cfg.nodes)),
            ProtocolKind::Stache | ProtocolKind::Predictive(_) => None,
        };
        let active_faults = match cfg.faults {
            Some(plan) if plan.is_active() => Some(plan),
            _ => None,
        };
        let mut fault_stats = None;
        let mut socket_guard = None;
        // All three backends present the same `Net`/inbox surface; faults,
        // batching, tracing, and teardown accounting sit above the
        // `Transport` trait, so the choice here cannot change any gated
        // counter (the backend-matrix CI job pins that).
        let mut built = match cfg.fabric {
            FabricKind::Channel => match active_faults {
                Some(plan) => {
                    let (eps, fs) = Fabric::new_faulty_with::<Msg>(cfg.nodes, plan, cfg.batch);
                    fault_stats = Some(fs);
                    Built::PerNode(eps)
                }
                None => Built::PerNode(Fabric::new_with::<Msg>(cfg.nodes, cfg.batch)),
            },
            FabricKind::Sharded { shards } => {
                let shards = if shards == 0 { auto_shards(cfg.nodes) } else { shards };
                match active_faults {
                    Some(plan) => {
                        let (eps, fs) = Fabric::new_sharded_faulty_with::<Msg>(
                            cfg.nodes, shards, plan, cfg.batch,
                        );
                        fault_stats = Some(fs);
                        Built::Sharded(eps)
                    }
                    None => Built::Sharded(Fabric::new_sharded_with::<Msg>(
                        cfg.nodes, shards, cfg.batch,
                    )),
                }
            }
            FabricKind::SocketPair { split } => {
                let split = if split == 0 { (cfg.nodes / 2).max(1) } else { split };
                let (eps, guard) = match active_faults {
                    Some(plan) => {
                        let (eps, fs, guard) =
                            socket::pair_faulty_with::<Msg>(cfg.nodes, split, plan, cfg.batch)
                                .expect("loopback socket fabric");
                        fault_stats = Some(fs);
                        (eps, guard)
                    }
                    None => socket::pair_with::<Msg>(cfg.nodes, split, None, cfg.batch)
                        .expect("loopback socket fabric"),
                };
                socket_guard = Some(guard);
                Built::PerNode(eps)
            }
        };
        let ctl = match &built {
            Built::PerNode(eps) => eps[0].ctl().clone(),
            Built::Sharded(eps) => eps[0].ctl().clone(),
        };
        let mut tracers = Vec::with_capacity(cfg.nodes);
        let mut hooks: Vec<Arc<dyn Hooks>> = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            // The tracer must land on the endpoint *before* its `Net` is
            // cloned into `NodeShared` — both the compute and protocol
            // sides reach the tracer through that clone.
            let tracer = Tracer::for_node(cfg.trace, i as NodeId);
            let net = match &mut built {
                Built::PerNode(eps) => {
                    eps[i].set_tracer(tracer.clone());
                    eps[i].net().clone()
                }
                Built::Sharded(eps) => {
                    let shard = i % eps.len();
                    eps[shard].set_tracer(i as NodeId, tracer.clone());
                    eps[shard].net(i as NodeId).clone()
                }
            };
            tracers.push(tracer);
            let (wake_tx, wake_rx) = unbounded();
            // Every node gets its own view of the block→home mapping: the
            // identity view when placement is off (the bit-identical
            // compiled-in-but-disabled path), else the rotate shift plus
            // the remap overlay. Views drift apart at runtime as nodes
            // learn of migrations through forwards.
            let overlay = match &cfg.placement {
                PlacementSpec::Remap(map) => map.clone(),
                PlacementSpec::Off | PlacementSpec::Online(_) => HomeMap::new(),
            };
            let homes = Arc::new(if cfg.home_shift == 0 && overlay.is_empty() {
                HomeView::identity(layout)
            } else {
                HomeView::with_placement(layout, cfg.home_shift, overlay)
            });
            let pl_cfg = match cfg.placement {
                PlacementSpec::Online(c) => Some(c),
                PlacementSpec::Off | PlacementSpec::Remap(_) => None,
            };
            let shared = Arc::new(NodeShared::new_with_placement(
                layout, cfg.cost, net, wake_tx, cfg.retry, homes, pl_cfg,
            ));
            let hook: Arc<dyn Hooks> = match cfg.protocol {
                ProtocolKind::Predictive(pcfg) => {
                    let pred = Arc::new(Predictive::new(pcfg));
                    preds.as_mut().expect("predictive mode").push(Arc::clone(&pred));
                    pred
                }
                ProtocolKind::Commutative(ccfg) => {
                    let cm = Arc::new(Commute::new(ccfg));
                    commutes.as_mut().expect("commutative mode").push(Arc::clone(&cm));
                    cm
                }
                ProtocolKind::Stache => Arc::new(NoHooks),
            };
            hooks.push(hook);
            shareds.push(shared);
            wake_rxs.push(Some(wake_rx));
        }
        match built {
            Built::PerNode(eps) => {
                for (i, ep) in eps.into_iter().enumerate() {
                    joins.push(spawn_protocol(Arc::clone(&shareds[i]), ep, Arc::clone(&hooks[i])));
                }
            }
            Built::Sharded(eps) => {
                for ep in eps {
                    let members = ep
                        .members()
                        .iter()
                        .map(|&n| {
                            (Arc::clone(&shareds[n as usize]), Arc::clone(&hooks[n as usize]))
                        })
                        .collect();
                    joins.push(spawn_protocol_shard(members, ep));
                }
            }
        }
        // Metrics plumbing: the hub exists as soon as the machine does, so
        // the publisher streams records live and a scrape during the run
        // sees the timeline so far. Output failures are loud (a mistyped
        // stream path must fail the run, not silently record nothing).
        let metrics = if cfg.metrics.enabled {
            let hub = Arc::new(MetricsHub::new());
            let stream_path = cfg.metrics.stream.clone();
            let publisher = stream_path.as_ref().map(|path| {
                use std::io::Write as _;
                let mut file =
                    std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
                        panic!("PRESCIENT_METRICS: cannot open stream file {path:?}: {e}")
                    }));
                let hub = Arc::clone(&hub);
                std::thread::Builder::new()
                    .name("metrics-pub".into())
                    .spawn(move || {
                        let mut seen = 0;
                        loop {
                            let (batch, closed) = hub.wait_more(seen);
                            seen += batch.len();
                            for r in &batch {
                                let _ = writeln!(file, "{}", r.to_json_line());
                            }
                            // Flush per batch, not per line: a follower
                            // sees whole records, and the run is never
                            // blocked on the file (the hub buffers).
                            let _ = file.flush();
                            if closed && batch.is_empty() {
                                return;
                            }
                        }
                    })
                    .expect("spawn metrics publisher thread")
            });
            let server = cfg.metrics.tcp.as_ref().map(|addr| {
                MetricsServer::spawn(Arc::clone(&hub), addr).unwrap_or_else(|e| {
                    panic!("PRESCIENT_METRICS: cannot bind tcp endpoint {addr:?}: {e}")
                })
            });
            Some(MetricsRt { hub, publisher, server, stream_path, runs: 0 })
        } else {
            None
        };
        let nodes = cfg.nodes;
        Machine {
            metrics,
            cfg,
            layout,
            shareds,
            preds,
            commutes,
            wake_rxs,
            barrier: Arc::new(VBarrier::new(nodes)),
            reduce: Arc::new(ReduceScratch {
                state: Mutex::new(ReduceState {
                    zeroed_round: 0,
                    contrib: vec![Vec::new(); nodes],
                }),
            }),
            fault_stats,
            ctl,
            tracers,
            joins,
            recovery: Arc::new(RecoveryCtl::new()),
            ckpts: Arc::new(CheckpointStore::new(nodes)),
            _socket: socket_guard,
        }
    }

    /// Drain every node's trace ring and merge the streams by virtual
    /// time. Returns the merged events plus the total number of events
    /// lost to ring wrap-around. Empty when tracing is disabled. Only
    /// meaningful between runs, when the machine is quiescent; drains are
    /// non-destructive, so calling this does not disturb the teardown
    /// export.
    pub fn trace_events(&self) -> (Vec<TraceEvent>, u64) {
        let dumps: Vec<_> = self.tracers.iter().filter_map(|t| t.drain()).collect();
        merge(dumps)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The address-space layout.
    pub fn layout(&self) -> GlobalLayout {
        self.layout
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Per-link fault counters, when the machine runs a faulty fabric.
    pub fn fault_stats(&self) -> Option<&Arc<FaultStats>> {
        self.fault_stats.as_ref()
    }

    /// Allocate `bytes` of shared memory homed at `node` (driver-side
    /// allocation, before or between runs).
    pub fn alloc_on(&self, node: NodeId, bytes: u64, align: u64) -> GAddr {
        self.shareds[node as usize].mem.lock().alloc(bytes, align)
    }

    /// The predictive-protocol state of `node`, if the machine runs the
    /// predictive protocol (used for manual schedules and diagnostics).
    pub fn predictive(&self, node: NodeId) -> Option<&Arc<Predictive>> {
        self.preds.as_ref().map(|p| &p[node as usize])
    }

    /// The commutative-merge state of `node`, if the machine runs the
    /// merge extension.
    pub fn commute(&self, node: NodeId) -> Option<&Arc<Commute>> {
        self.commutes.as_ref().map(|c| &c[node as usize])
    }

    /// Install a schedule-oracle recording tap on every node's predictive
    /// protocol (no-op under plain Stache, returning `false`). The tap
    /// observes every home-node request regardless of the protocol's
    /// recording state; remove it with [`Machine::remove_tap`].
    pub fn install_tap(&self, tap: &Arc<AccessTap>) -> bool {
        let Some(preds) = self.preds.as_ref() else { return false };
        for p in preds {
            p.set_tap(Some(Arc::clone(tap)));
        }
        true
    }

    /// Remove a previously installed recording tap from every node.
    pub fn remove_tap(&self) {
        if let Some(preds) = self.preds.as_ref() {
            for p in preds {
                p.set_tap(None);
            }
        }
    }

    /// Verify all coherence invariants (single writer / valid sharers /
    /// data agreement — see `prescient_stache::check`). Only meaningful
    /// between runs, when the machine is quiescent. Panics with the list
    /// of violations if any invariant is broken.
    pub fn assert_coherent(&self) {
        let violations = prescient_stache::check_coherence(&self.shareds);
        assert!(violations.is_empty(), "coherence violations: {violations:#?}");
    }

    /// Run an SPMD program: `f` executes concurrently on every node's
    /// compute thread. Returns each node's result plus the run report with
    /// the paper's time breakdown.
    ///
    /// # Panics
    ///
    /// Panics with the structured [`MachineError`] report if the run dies
    /// (a compute thread panicked, or the watchdog declared the machine
    /// stalled). Use [`Machine::try_run`] to handle failures as values.
    pub fn run<R, F>(&mut self, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        self.try_run(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Machine::run`], but a dying machine produces `Err(MachineError)`
    /// instead of a hang or a bare panic: every compute thread runs under
    /// a panic guard, and the first failure aborts the fabric and poisons
    /// the barrier so all of its siblings unwind and join (a mid-phase
    /// panic on one node can never hang the other 31 in a barrier). With a
    /// watchdog configured, zero-progress hangs (e.g. a full partition)
    /// are converted the same way within the watchdog's wall-clock budget.
    ///
    /// A machine that returned `Err` is dead — the fabric abort flag and
    /// barrier poison stay raised; build a fresh machine to run again.
    pub fn try_run<R, F>(&mut self, f: F) -> Result<(Vec<R>, RunReport), MachineError>
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        // Misuse is a structured error, not a panic: a wake inbox that is
        // still checked out means another run is executing on this machine
        // right now, and an aborted fabric means a previous run died (its
        // abort flag and barrier poison stay raised) — spawning compute
        // threads in either state would hang or panic mid-assembly.
        if self.wake_rxs.iter().any(Option::is_none) {
            return Err(self.machine_error(
                FailureKind::AlreadyRunning,
                None,
                "a run is already executing on this machine".into(),
            ));
        }
        if self.ctl.is_aborting() {
            return Err(self.machine_error(
                FailureKind::AlreadyRunning,
                None,
                "this machine died in a previous run; build a fresh machine".into(),
            ));
        }
        let wall_start = Instant::now();
        let stats0: Vec<_> = self.shareds.iter().map(|s| s.stats.snapshot()).collect();
        // Charge the offline remap to this run's report: each node counts
        // the overlay blocks it now homes (never gated — remap changes no
        // gated counter, only msgs/bytes, and those are allowed to drop).
        if let PlacementSpec::Remap(map) = &self.cfg.placement {
            for (_, home) in map.iter() {
                self.shareds[home as usize].stats.remapped_blocks.fetch_add(1, Ordering::Relaxed);
            }
        }
        let wire0 = self.ctl.wire();
        let run_ord = self.metrics.as_mut().map(|m| {
            m.runs += 1;
            m.runs
        });
        let rxs: Vec<Receiver<Wake>> =
            self.wake_rxs.iter_mut().map(|o| o.take().expect("checked above")).collect();
        // Restore clones immediately (crossbeam receivers share the
        // channel), so the machine's inboxes survive even a panicked run.
        for (i, rx) in rxs.iter().enumerate() {
            self.wake_rxs[i] = Some(rx.clone());
        }

        let errors = Arc::new(ErrorSlot::new());
        let watchdog = self.cfg.watchdog.map(|wcfg| {
            Watchdog::spawn(
                wcfg,
                self.shareds.clone(),
                Arc::clone(&self.recovery),
                Arc::clone(&self.barrier),
                Arc::clone(&self.ctl),
                Arc::clone(&errors),
                self.tracers[0].clone(),
            )
        });

        let mut out: Vec<Option<(R, prescient_tempest::TimeBreakdown)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = rxs
                    .into_iter()
                    .enumerate()
                    .map(|(i, rx)| {
                        let f = &f;
                        let shared = Arc::clone(&self.shareds[i]);
                        let pred = self.preds.as_ref().map(|p| Arc::clone(&p[i]));
                        let commute = self.commutes.as_ref().map(|c| Arc::clone(&c[i]));
                        let barrier = Arc::clone(&self.barrier);
                        let reduce = Arc::clone(&self.reduce);
                        let recovery = Arc::clone(&self.recovery);
                        let ckpts = Arc::clone(&self.ckpts);
                        let crash = self.cfg.crash;
                        let checkpoints = self.cfg.checkpoints;
                        let errors = Arc::clone(&errors);
                        let ctl = Arc::clone(&self.ctl);
                        // Node 0 additionally records the fabric-global
                        // wire deltas on the whole machine's behalf.
                        let metrics = self.metrics.as_ref().map(|m| MetricsInit {
                            hub: Arc::clone(&m.hub),
                            run: run_ord.expect("metrics on"),
                            baseline: stats0[i],
                            ctl: (i == 0).then(|| Arc::clone(&self.ctl)),
                            wire0,
                        });
                        scope.spawn(move || {
                            let guard_barrier = Arc::clone(&barrier);
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                let mut ctx = NodeCtx::new(
                                    shared,
                                    pred,
                                    commute,
                                    rx,
                                    barrier,
                                    reduce,
                                    recovery,
                                    ckpts,
                                    crash,
                                    checkpoints,
                                    metrics,
                                );
                                let r = f(&mut ctx);
                                let (breakdown, _rx) = ctx.finish();
                                (r, breakdown)
                            }));
                            match r {
                                Ok(v) => Some(v),
                                Err(payload) => {
                                    // `Aborted` payloads are collateral from a
                                    // failure already recorded elsewhere; real
                                    // panics race for the first-failure slot.
                                    if payload.downcast_ref::<Aborted>().is_none() {
                                        let msg = payload
                                            .downcast_ref::<&str>()
                                            .map(|s| (*s).to_string())
                                            .or_else(|| payload.downcast_ref::<String>().cloned())
                                            .unwrap_or_else(|| {
                                                "compute thread panicked (opaque payload)".into()
                                            });
                                        errors.record(FailureKind::Panic, Some(i as NodeId), msg);
                                    }
                                    // Unblock every sibling: barrier waiters
                                    // unwind via poison, fetch/pre-send
                                    // timeout loops via the abort flag.
                                    ctl.abort();
                                    guard_barrier.poison();
                                    None
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("compute thread panicked outside the panic guard"))
                    .collect()
            });

        if let Some(w) = watchdog {
            w.stop();
        }

        if let Some((kind, node, message)) = errors.take() {
            return Err(self.machine_error(kind, node, message));
        }
        if out.iter().any(Option::is_none) {
            // Abort collateral without a recorded first failure should be
            // impossible; refuse to fabricate a success if it happens.
            return Err(self.machine_error(
                FailureKind::Panic,
                None,
                "compute thread aborted without a recorded failure".into(),
            ));
        }

        if self.cfg.validate {
            // All compute threads have joined and every fetch/pre-send
            // completed, so the machine is quiescent (straggler duplicates
            // still parked in the fault layer cannot change protocol state
            // — the handlers reject them by seqno/op/epoch).
            self.assert_coherent();
        }

        let mut results = Vec::with_capacity(out.len());
        let mut per_node = Vec::with_capacity(out.len());
        for (i, o) in out.drain(..).enumerate() {
            let (r, breakdown) = o.expect("checked above");
            results.push(r);
            let stats = self.shareds[i].stats.snapshot();
            per_node.push(NodeReport {
                node: i as NodeId,
                breakdown,
                stats: stats.sub(&stats0[i]),
                unused_presends: self.shareds[i].mem.lock().unused_presends() as u64,
            });
        }
        Ok((
            results,
            RunReport { per_node, wall: wall_start.elapsed(), wire: self.ctl.wire().sub(&wire0) },
        ))
    }

    /// The metrics timeline accumulated so far: every phase record every
    /// run has cut on this machine, wrapped for aggregation and export.
    /// `None` when metrics are off. Callable mid-run (the hub is live) —
    /// but only records already cut are included; call between runs for a
    /// consistent picture.
    pub fn timeline(&self) -> Option<RunTimeline> {
        self.metrics.as_ref().map(|m| RunTimeline::new(self.cfg.nodes, m.hub.snapshot()))
    }

    /// The bound address of the Prometheus text-exposition endpoint, when
    /// the metrics config asked for one (`tcp:ADDR`; an `ADDR` with port
    /// 0 resolves here to the picked port).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics.as_ref().and_then(|m| m.server.as_ref()).map(MetricsServer::addr)
    }

    /// Assemble the structured death report: the failure, every node's
    /// protocol state, and the tail of the merged trace (when tracing ran).
    fn machine_error(
        &self,
        kind: FailureKind,
        node: Option<NodeId>,
        message: String,
    ) -> MachineError {
        let nodes = self
            .shareds
            .iter()
            .map(|s| NodeErrorState {
                node: s.me,
                outstanding_fetch: s.outstanding(),
                msgs_out: s.stats.msgs_out.load(Ordering::Relaxed),
                retries: s.stats.retries.load(Ordering::Relaxed),
                presend_retries: s.stats.presend_retries.load(Ordering::Relaxed),
                recoveries: s.stats.recoveries.load(Ordering::Relaxed),
            })
            .collect();
        let (events, _) = self.trace_events();
        let tail_from = events.len().saturating_sub(16);
        let trace_tail = to_jsonl(&events[tail_from..]).lines().map(str::to_string).collect();
        MachineError { kind, node, message, nodes, trace_tail }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        // Signal teardown before the shutdown messages fan out: any
        // in-flight traffic addressed to a node whose handler has already
        // exited is legitimate teardown loss from here on.
        self.ctl.mark_closing();
        for s in &self.shareds {
            s.send(s.me, Msg::Shutdown);
            // The shutdown self-send goes straight on the wire, but any
            // stragglers still parked in this node's egress should too.
            s.flush_net();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        // With every thread joined the rings are quiescent: export the
        // merged event stream. `PRESCIENT_TRACE_OUT` overrides the output
        // basename (default `trace` → `trace.json` + `trace.jsonl`).
        if self.tracers.iter().any(Tracer::on) {
            let (events, dropped) = self.trace_events();
            if dropped > 0 {
                eprintln!("prescient: trace rings wrapped, {dropped} events lost");
            }
            let base = std::env::var("PRESCIENT_TRACE_OUT").unwrap_or_else(|_| "trace".into());
            let chrome = to_chrome_json(&events);
            let jsonl = to_jsonl(&events);
            if let Err(e) = std::fs::write(format!("{base}.json"), chrome)
                .and_then(|()| std::fs::write(format!("{base}.jsonl"), jsonl))
            {
                eprintln!("prescient: trace export to {base}.json[l] failed: {e}");
            }
        }
        // Metrics teardown: close the hub (the publisher drains its tail
        // and exits), stop the exposition endpoint, then merge every
        // node's series into the RunTimeline JSON. `PRESCIENT_METRICS_OUT`
        // names the export base explicitly; otherwise a streamed machine
        // exports next to its stream file, and an in-memory machine
        // exports nothing (its user holds `Machine::timeline`).
        if let Some(m) = self.metrics.as_mut() {
            m.hub.close();
            if let Some(p) = m.publisher.take() {
                let _ = p.join();
            }
            if let Some(mut s) = m.server.take() {
                s.shutdown();
            }
            let out = std::env::var("PRESCIENT_METRICS_OUT")
                .ok()
                .map(|base| format!("{base}.timeline.json"))
                .or_else(|| m.stream_path.as_ref().map(|p| format!("{p}.timeline.json")));
            if let Some(path) = out {
                let tl = RunTimeline::new(self.cfg.nodes, m.hub.snapshot());
                if let Err(e) = std::fs::write(&path, tl.to_json()) {
                    eprintln!("prescient: metrics timeline export to {path} failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> MachineConfig {
        // Pin the backend: these tests exercise run-state misuse, not the
        // backend matrix, and must not follow a `PRESCIENT_FABRIC` override.
        MachineConfig::stache(nodes, 64).with_fabric(FabricKind::Channel)
    }

    #[test]
    fn second_run_on_dead_machine_errors_instead_of_panicking() {
        let mut m = Machine::new(cfg(2));
        let err = m
            .try_run(|ctx| {
                if ctx.me() == 1 {
                    panic!("deliberate test panic");
                }
                ctx.barrier();
            })
            .expect_err("a panicking node must fail the run");
        assert_eq!(err.kind, FailureKind::Panic);
        assert_eq!(err.node, Some(1));
        // The machine is dead (abort flag + barrier poison stay raised); a
        // second run must come back as a structured misuse error, not a
        // panic or a hang.
        let err = m.try_run(|_| ()).expect_err("a dead machine must refuse to run");
        assert_eq!(err.kind, FailureKind::AlreadyRunning);
        assert!(err.message.contains("died in a previous run"), "got: {}", err.message);
    }

    #[test]
    fn checked_out_wake_inbox_reports_already_running() {
        let mut m = Machine::new(cfg(1));
        // What `try_run` observes when a concurrent run is mid-flight.
        m.wake_rxs[0] = None;
        let err = m.try_run(|_| ()).expect_err("must refuse to double-run");
        assert_eq!(err.kind, FailureKind::AlreadyRunning);
        assert!(err.message.contains("already executing"), "got: {}", err.message);
    }

    #[test]
    fn machine_runs_on_every_backend() {
        for fabric in [
            FabricKind::Channel,
            FabricKind::Sharded { shards: 2 },
            FabricKind::SocketPair { split: 0 },
        ] {
            let mut m = Machine::new(cfg(4).with_fabric(fabric));
            let (sums, _report) = m.run(|ctx| {
                let n = ctx.nodes() as u64;
                ctx.barrier();
                u64::from(ctx.me()) + n
            });
            assert_eq!(sums, vec![4, 5, 6, 7], "backend {fabric:?}");
        }
    }
}
