//! The emulated machine: node assembly, SPMD execution, reduction scratch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_core::{AccessTap, Commute, Predictive};
use prescient_stache::{spawn_protocol, Msg, NoHooks, NodeShared, Wake};
use prescient_tempest::fabric::{Fabric, FabricCtl};
use prescient_tempest::trace::{merge, to_chrome_json, to_jsonl};
use prescient_tempest::{
    Aborted, FaultStats, GAddr, GlobalLayout, NodeId, TraceEvent, Tracer, VBarrier,
};

use crate::config::{MachineConfig, ProtocolKind};
use crate::ctx::NodeCtx;
use crate::recovery::{
    CheckpointStore, ErrorSlot, FailureKind, MachineError, NodeErrorState, RecoveryCtl, Watchdog,
};
use crate::report::{NodeReport, RunReport};

/// Scratch space for runtime reductions (a C\*\* language feature, handled
/// outside the coherence protocol — §1 notes reductions are not a
/// predictive-protocol target).
pub(crate) struct ReduceScratch {
    pub(crate) state: Mutex<ReduceState>,
}

pub(crate) struct ReduceState {
    /// Round whose contribution slots are currently valid.
    pub(crate) zeroed_round: u64,
    /// One contribution vector per node; summed in node order at read-out
    /// so the reduction is deterministic regardless of arrival order.
    pub(crate) contrib: Vec<Vec<f64>>,
}

/// An emulated multi-node machine.
///
/// Protocol-handler threads persist for the machine's lifetime; each
/// [`Machine::run`] call spawns fresh compute threads executing the given
/// SPMD program.
pub struct Machine {
    cfg: MachineConfig,
    layout: GlobalLayout,
    shareds: Vec<Arc<NodeShared>>,
    preds: Option<Vec<Arc<Predictive>>>,
    commutes: Option<Vec<Arc<Commute>>>,
    wake_rxs: Vec<Option<Receiver<Wake>>>,
    barrier: Arc<VBarrier>,
    reduce: Arc<ReduceScratch>,
    fault_stats: Option<Arc<FaultStats>>,
    ctl: Arc<FabricCtl>,
    tracers: Vec<Tracer>,
    joins: Vec<JoinHandle<()>>,
    /// Crash flag + crash-plan latch; machine-lifetime, so a plan fires at
    /// most once even across multiple [`Machine::run`] calls.
    recovery: Arc<RecoveryCtl>,
    /// Per-node checkpoint slots (empty until a checkpointed phase runs).
    ckpts: Arc<CheckpointStore>,
}

impl Machine {
    /// Build a machine: fabric, per-node state, and protocol threads.
    pub fn new(cfg: MachineConfig) -> Machine {
        let layout = GlobalLayout::new(cfg.nodes, cfg.block_size);
        let mut shareds = Vec::with_capacity(cfg.nodes);
        let mut wake_rxs = Vec::with_capacity(cfg.nodes);
        let mut joins = Vec::with_capacity(cfg.nodes);
        let mut preds = match cfg.protocol {
            ProtocolKind::Predictive(_) => Some(Vec::with_capacity(cfg.nodes)),
            ProtocolKind::Stache | ProtocolKind::Commutative(_) => None,
        };
        let mut commutes = match cfg.protocol {
            ProtocolKind::Commutative(_) => Some(Vec::with_capacity(cfg.nodes)),
            ProtocolKind::Stache | ProtocolKind::Predictive(_) => None,
        };
        let (endpoints, fault_stats) = match cfg.faults {
            Some(plan) if plan.is_active() => {
                let (eps, fs) = Fabric::new_faulty_with::<Msg>(cfg.nodes, plan, cfg.batch);
                (eps, Some(fs))
            }
            _ => (Fabric::new_with::<Msg>(cfg.nodes, cfg.batch), None),
        };
        let ctl = endpoints[0].ctl().clone();
        let mut tracers = Vec::with_capacity(cfg.nodes);
        for (i, mut ep) in endpoints.into_iter().enumerate() {
            // The tracer must land on the endpoint *before* its `Net` is
            // cloned into `NodeShared` — both the compute and protocol
            // sides reach the tracer through that clone.
            let tracer = Tracer::for_node(cfg.trace, i as NodeId);
            ep.set_tracer(tracer.clone());
            tracers.push(tracer);
            let (wake_tx, wake_rx) = unbounded();
            let shared = Arc::new(NodeShared::new_with_retry(
                layout,
                cfg.cost,
                ep.net().clone(),
                wake_tx,
                cfg.retry,
            ));
            let join = match cfg.protocol {
                ProtocolKind::Predictive(pcfg) => {
                    let pred = Arc::new(Predictive::new(pcfg));
                    let j = spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&pred) as _);
                    preds.as_mut().expect("predictive mode").push(pred);
                    j
                }
                ProtocolKind::Commutative(ccfg) => {
                    let cm = Arc::new(Commute::new(ccfg));
                    let j = spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&cm) as _);
                    commutes.as_mut().expect("commutative mode").push(cm);
                    j
                }
                ProtocolKind::Stache => spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)),
            };
            shareds.push(shared);
            wake_rxs.push(Some(wake_rx));
            joins.push(join);
        }
        Machine {
            cfg,
            layout,
            shareds,
            preds,
            commutes,
            wake_rxs,
            barrier: Arc::new(VBarrier::new(cfg.nodes)),
            reduce: Arc::new(ReduceScratch {
                state: Mutex::new(ReduceState {
                    zeroed_round: 0,
                    contrib: vec![Vec::new(); cfg.nodes],
                }),
            }),
            fault_stats,
            ctl,
            tracers,
            joins,
            recovery: Arc::new(RecoveryCtl::new()),
            ckpts: Arc::new(CheckpointStore::new(cfg.nodes)),
        }
    }

    /// Drain every node's trace ring and merge the streams by virtual
    /// time. Returns the merged events plus the total number of events
    /// lost to ring wrap-around. Empty when tracing is disabled. Only
    /// meaningful between runs, when the machine is quiescent; drains are
    /// non-destructive, so calling this does not disturb the teardown
    /// export.
    pub fn trace_events(&self) -> (Vec<TraceEvent>, u64) {
        let dumps: Vec<_> = self.tracers.iter().filter_map(|t| t.drain()).collect();
        merge(dumps)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The address-space layout.
    pub fn layout(&self) -> GlobalLayout {
        self.layout
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Per-link fault counters, when the machine runs a faulty fabric.
    pub fn fault_stats(&self) -> Option<&Arc<FaultStats>> {
        self.fault_stats.as_ref()
    }

    /// Allocate `bytes` of shared memory homed at `node` (driver-side
    /// allocation, before or between runs).
    pub fn alloc_on(&self, node: NodeId, bytes: u64, align: u64) -> GAddr {
        self.shareds[node as usize].mem.lock().alloc(bytes, align)
    }

    /// The predictive-protocol state of `node`, if the machine runs the
    /// predictive protocol (used for manual schedules and diagnostics).
    pub fn predictive(&self, node: NodeId) -> Option<&Arc<Predictive>> {
        self.preds.as_ref().map(|p| &p[node as usize])
    }

    /// The commutative-merge state of `node`, if the machine runs the
    /// merge extension.
    pub fn commute(&self, node: NodeId) -> Option<&Arc<Commute>> {
        self.commutes.as_ref().map(|c| &c[node as usize])
    }

    /// Install a schedule-oracle recording tap on every node's predictive
    /// protocol (no-op under plain Stache, returning `false`). The tap
    /// observes every home-node request regardless of the protocol's
    /// recording state; remove it with [`Machine::remove_tap`].
    pub fn install_tap(&self, tap: &Arc<AccessTap>) -> bool {
        let Some(preds) = self.preds.as_ref() else { return false };
        for p in preds {
            p.set_tap(Some(Arc::clone(tap)));
        }
        true
    }

    /// Remove a previously installed recording tap from every node.
    pub fn remove_tap(&self) {
        if let Some(preds) = self.preds.as_ref() {
            for p in preds {
                p.set_tap(None);
            }
        }
    }

    /// Verify all coherence invariants (single writer / valid sharers /
    /// data agreement — see `prescient_stache::check`). Only meaningful
    /// between runs, when the machine is quiescent. Panics with the list
    /// of violations if any invariant is broken.
    pub fn assert_coherent(&self) {
        let violations = prescient_stache::check_coherence(&self.shareds);
        assert!(violations.is_empty(), "coherence violations: {violations:#?}");
    }

    /// Run an SPMD program: `f` executes concurrently on every node's
    /// compute thread. Returns each node's result plus the run report with
    /// the paper's time breakdown.
    ///
    /// # Panics
    ///
    /// Panics with the structured [`MachineError`] report if the run dies
    /// (a compute thread panicked, or the watchdog declared the machine
    /// stalled). Use [`Machine::try_run`] to handle failures as values.
    pub fn run<R, F>(&mut self, f: F) -> (Vec<R>, RunReport)
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        self.try_run(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Machine::run`], but a dying machine produces `Err(MachineError)`
    /// instead of a hang or a bare panic: every compute thread runs under
    /// a panic guard, and the first failure aborts the fabric and poisons
    /// the barrier so all of its siblings unwind and join (a mid-phase
    /// panic on one node can never hang the other 31 in a barrier). With a
    /// watchdog configured, zero-progress hangs (e.g. a full partition)
    /// are converted the same way within the watchdog's wall-clock budget.
    ///
    /// A machine that returned `Err` is dead — the fabric abort flag and
    /// barrier poison stay raised; build a fresh machine to run again.
    pub fn try_run<R, F>(&mut self, f: F) -> Result<(Vec<R>, RunReport), MachineError>
    where
        R: Send,
        F: Fn(&mut NodeCtx) -> R + Sync,
    {
        let wall_start = Instant::now();
        let stats0: Vec<_> = self.shareds.iter().map(|s| s.stats.snapshot()).collect();
        let wire0 = self.ctl.wire();
        let rxs: Vec<Receiver<Wake>> =
            self.wake_rxs.iter_mut().map(|o| o.take().expect("machine already running")).collect();
        // Restore clones immediately (crossbeam receivers share the
        // channel), so the machine's inboxes survive even a panicked run.
        for (i, rx) in rxs.iter().enumerate() {
            self.wake_rxs[i] = Some(rx.clone());
        }

        let errors = Arc::new(ErrorSlot::new());
        let watchdog = self.cfg.watchdog.map(|wcfg| {
            Watchdog::spawn(
                wcfg,
                self.shareds.clone(),
                Arc::clone(&self.recovery),
                Arc::clone(&self.barrier),
                Arc::clone(&self.ctl),
                Arc::clone(&errors),
                self.tracers[0].clone(),
            )
        });

        let mut out: Vec<Option<(R, prescient_tempest::TimeBreakdown)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = rxs
                    .into_iter()
                    .enumerate()
                    .map(|(i, rx)| {
                        let f = &f;
                        let shared = Arc::clone(&self.shareds[i]);
                        let pred = self.preds.as_ref().map(|p| Arc::clone(&p[i]));
                        let commute = self.commutes.as_ref().map(|c| Arc::clone(&c[i]));
                        let barrier = Arc::clone(&self.barrier);
                        let reduce = Arc::clone(&self.reduce);
                        let recovery = Arc::clone(&self.recovery);
                        let ckpts = Arc::clone(&self.ckpts);
                        let crash = self.cfg.crash;
                        let checkpoints = self.cfg.checkpoints;
                        let errors = Arc::clone(&errors);
                        let ctl = Arc::clone(&self.ctl);
                        scope.spawn(move || {
                            let guard_barrier = Arc::clone(&barrier);
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                let mut ctx = NodeCtx::new(
                                    shared,
                                    pred,
                                    commute,
                                    rx,
                                    barrier,
                                    reduce,
                                    recovery,
                                    ckpts,
                                    crash,
                                    checkpoints,
                                );
                                let r = f(&mut ctx);
                                let (breakdown, _rx) = ctx.finish();
                                (r, breakdown)
                            }));
                            match r {
                                Ok(v) => Some(v),
                                Err(payload) => {
                                    // `Aborted` payloads are collateral from a
                                    // failure already recorded elsewhere; real
                                    // panics race for the first-failure slot.
                                    if payload.downcast_ref::<Aborted>().is_none() {
                                        let msg = payload
                                            .downcast_ref::<&str>()
                                            .map(|s| (*s).to_string())
                                            .or_else(|| payload.downcast_ref::<String>().cloned())
                                            .unwrap_or_else(|| {
                                                "compute thread panicked (opaque payload)".into()
                                            });
                                        errors.record(FailureKind::Panic, Some(i as NodeId), msg);
                                    }
                                    // Unblock every sibling: barrier waiters
                                    // unwind via poison, fetch/pre-send
                                    // timeout loops via the abort flag.
                                    ctl.abort();
                                    guard_barrier.poison();
                                    None
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("compute thread panicked outside the panic guard"))
                    .collect()
            });

        if let Some(w) = watchdog {
            w.stop();
        }

        if let Some((kind, node, message)) = errors.take() {
            return Err(self.machine_error(kind, node, message));
        }
        if out.iter().any(Option::is_none) {
            // Abort collateral without a recorded first failure should be
            // impossible; refuse to fabricate a success if it happens.
            return Err(self.machine_error(
                FailureKind::Panic,
                None,
                "compute thread aborted without a recorded failure".into(),
            ));
        }

        if self.cfg.validate {
            // All compute threads have joined and every fetch/pre-send
            // completed, so the machine is quiescent (straggler duplicates
            // still parked in the fault layer cannot change protocol state
            // — the handlers reject them by seqno/op/epoch).
            self.assert_coherent();
        }

        let mut results = Vec::with_capacity(out.len());
        let mut per_node = Vec::with_capacity(out.len());
        for (i, o) in out.drain(..).enumerate() {
            let (r, breakdown) = o.expect("checked above");
            results.push(r);
            let stats = self.shareds[i].stats.snapshot();
            per_node.push(NodeReport {
                node: i as NodeId,
                breakdown,
                stats: stats.sub(&stats0[i]),
                unused_presends: self.shareds[i].mem.lock().unused_presends() as u64,
            });
        }
        Ok((
            results,
            RunReport { per_node, wall: wall_start.elapsed(), wire: self.ctl.wire().sub(&wire0) },
        ))
    }

    /// Assemble the structured death report: the failure, every node's
    /// protocol state, and the tail of the merged trace (when tracing ran).
    fn machine_error(
        &self,
        kind: FailureKind,
        node: Option<NodeId>,
        message: String,
    ) -> MachineError {
        let nodes = self
            .shareds
            .iter()
            .map(|s| NodeErrorState {
                node: s.me,
                outstanding_fetch: s.outstanding(),
                msgs_out: s.stats.msgs_out.load(Ordering::Relaxed),
                retries: s.stats.retries.load(Ordering::Relaxed),
                presend_retries: s.stats.presend_retries.load(Ordering::Relaxed),
                recoveries: s.stats.recoveries.load(Ordering::Relaxed),
            })
            .collect();
        let (events, _) = self.trace_events();
        let tail_from = events.len().saturating_sub(16);
        let trace_tail = to_jsonl(&events[tail_from..]).lines().map(str::to_string).collect();
        MachineError { kind, node, message, nodes, trace_tail }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        // Signal teardown before the shutdown messages fan out: any
        // in-flight traffic addressed to a node whose handler has already
        // exited is legitimate teardown loss from here on.
        self.ctl.mark_closing();
        for s in &self.shareds {
            s.send(s.me, Msg::Shutdown);
            // The shutdown self-send goes straight on the wire, but any
            // stragglers still parked in this node's egress should too.
            s.flush_net();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        // With every thread joined the rings are quiescent: export the
        // merged event stream. `PRESCIENT_TRACE_OUT` overrides the output
        // basename (default `trace` → `trace.json` + `trace.jsonl`).
        if self.tracers.iter().any(Tracer::on) {
            let (events, dropped) = self.trace_events();
            if dropped > 0 {
                eprintln!("prescient: trace rings wrapped, {dropped} events lost");
            }
            let base = std::env::var("PRESCIENT_TRACE_OUT").unwrap_or_else(|_| "trace".into());
            let chrome = to_chrome_json(&events);
            let jsonl = to_jsonl(&events);
            if let Err(e) = std::fs::write(format!("{base}.json"), chrome)
                .and_then(|()| std::fs::write(format!("{base}.jsonl"), jsonl))
            {
                eprintln!("prescient: trace export to {base}.json[l] failed: {e}");
            }
        }
    }
}
