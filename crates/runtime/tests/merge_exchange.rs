//! End-to-end tests of the commutative-merge protocol mode: every window
//! of `NodeCtx::merge_exchange` must deliver every contributor's payload
//! exactly once, in deterministic (contributor, chunk) order, across
//! chunking, repeated windows, chaotic fabrics, and tracing.

use std::time::Duration;

use prescient_core::CommuteConfig;
use prescient_runtime::{Machine, MachineConfig, NodeCtx, ProtocolKind};
use prescient_stache::RetryConfig;
use prescient_tempest::trace::pack_counts;
use prescient_tempest::{EventKind, FaultPlan, NodeId, TraceConfig};

const NODES: usize = 4;

fn commutative_cfg() -> MachineConfig {
    MachineConfig::commutative(NODES, 32)
        .with_retry(RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 })
}

/// The payload node `src` sends to node `dst` in window `w`: unique per
/// (src, dst, window) so cross-window or cross-target mixups are caught.
fn payload(src: u16, dst: u16, w: usize) -> Vec<u8> {
    (0..16 + src as usize)
        .map(|i| (src as usize * 31 + dst as usize * 7 + w * 3 + i) as u8)
        .collect()
}

/// Run `windows` merge windows on an existing machine and assert each
/// delivers every contributor's bytes, in ascending contributor order.
fn run_windows(m: &mut Machine, windows: usize) {
    m.run(|ctx: &mut NodeCtx| {
        let me = ctx.me();
        for w in 0..windows {
            let outgoing: Vec<(NodeId, Vec<u8>)> =
                (0..NODES as u16).map(|dst| (dst, payload(me, dst, w))).collect();
            let merged = ctx.merge_exchange(1, &outgoing);
            // Chunks from one contributor are adjacent and in order, so
            // concatenating per contributor reassembles the payload.
            let mut got: Vec<(u16, Vec<u8>)> = Vec::new();
            for (src, bytes) in merged {
                match got.last_mut() {
                    Some((s, buf)) if *s == src => buf.extend_from_slice(&bytes),
                    _ => got.push((src, bytes.to_vec())),
                }
            }
            let expect: Vec<(u16, Vec<u8>)> =
                (0..NODES as u16).map(|src| (src, payload(src, me, w))).collect();
            assert_eq!(got, expect, "node {me}, window {w}");
        }
    });
}

#[test]
fn merge_delivers_every_contributor_in_order() {
    let mut m = Machine::new(commutative_cfg().validated());
    run_windows(&mut m, 1);
}

#[test]
fn repeated_windows_are_isolated_by_epochs() {
    // Five back-to-back windows: push-id/epoch bookkeeping must keep each
    // window's deltas separate and fully delivered.
    let mut m = Machine::new(commutative_cfg().validated());
    run_windows(&mut m, 5);
}

#[test]
fn chunked_payloads_reassemble() {
    // A 7-byte chunk limit forces every payload into multiple chunks.
    let cfg = MachineConfig {
        protocol: ProtocolKind::Commutative(CommuteConfig { max_chunk_bytes: 7 }),
        ..commutative_cfg()
    };
    let mut m = Machine::new(cfg.validated());
    run_windows(&mut m, 3);
}

#[test]
fn merge_survives_a_chaotic_fabric() {
    // Dropped pushes and dropped acks: the retransmission path plus
    // (push id, epoch) idempotency must still deliver exactly-once.
    let cfg = MachineConfig {
        protocol: ProtocolKind::Commutative(CommuteConfig { max_chunk_bytes: 7 }),
        ..MachineConfig::commutative(NODES, 32)
    }
    .with_faults(FaultPlan::chaos(0x6E26E))
    .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 })
    .validated();
    let mut m = Machine::new(cfg);
    run_windows(&mut m, 3);
}

#[test]
fn merge_windows_are_traced() {
    std::env::set_var(
        "PRESCIENT_TRACE_OUT",
        std::env::temp_dir()
            .join(format!("merge_trace_{}", std::process::id()))
            .to_string_lossy()
            .as_ref(),
    );
    let windows = 2;
    let mut m = Machine::new(commutative_cfg().with_trace(TraceConfig::with_capacity(1 << 15)));
    run_windows(&mut m, windows);
    let (events, dropped) = m.trace_events();
    assert_eq!(dropped, 0);
    for node in 0..NODES as u16 {
        let begins: Vec<_> =
            events.iter().filter(|e| e.node == node && e.kind == EventKind::MergeBegin).collect();
        let ends: Vec<_> =
            events.iter().filter(|e| e.node == node && e.kind == EventKind::MergeEnd).collect();
        assert_eq!(begins.len(), windows, "node {node}: one MergeBegin per window");
        assert_eq!(ends.len(), windows, "node {node}: one MergeEnd per window");
        for b in &begins {
            assert_eq!(b.a, 1, "phase id rides in `a`");
            assert_eq!(b.b, NODES as u64, "payload target count rides in `b`");
        }
        for e in &ends {
            // Each window: one chunk out per remote target (the local
            // contribution skips the fabric), one chunk in per contributor
            // including self (payloads fit a single chunk at the default
            // limit).
            assert_eq!(e.b, pack_counts(NODES as u64 - 1, NODES as u64));
        }
    }
}
