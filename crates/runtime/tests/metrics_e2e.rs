//! End-to-end tests of the metrics timeline: per-phase records must
//! reconcile *exactly* with the run report (the telescoping-sum
//! invariant), must not perturb the measured computation, must survive
//! crash-replay without double-counting, and the live outputs (JSONL
//! stream, Prometheus endpoint, teardown timeline) must agree with each
//! other.

use std::io::{Read, Write};
use std::time::Duration;

use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx, RunReport, RunTimeline};
use prescient_stache::RetryConfig;
use prescient_tempest::{CrashPlan, MetricsConfig, PhaseRecord};

const NODES: usize = 4;
const N: usize = 64;
const ITERS: usize = 4;

fn base_cfg() -> MachineConfig {
    // Generous timeout: on a clean fabric a retry can only be host-load
    // noise, which would make the off/on comparison flaky.
    MachineConfig::predictive(NODES, 32)
        .with_retry(RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 })
}

/// Init + double-buffered relaxation + gather in ONE run, so run 1's
/// records cover exactly what the run report counts.
fn run_relaxation(cfg: MachineConfig) -> (Vec<f64>, RunReport, Machine) {
    let mut m = Machine::new(cfg);
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let (vals, report) = m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
        for _ in 0..ITERS {
            for (phase, src, dst) in [(1u32, &a, &b), (2, &b, &a)] {
                ctx.phase_begin(phase);
                for i in src.my_range(ctx.me()) {
                    let v = if i > 0 && i + 1 < N {
                        let l: f64 = ctx.read(src.addr(i - 1));
                        let r: f64 = ctx.read(src.addr(i + 1));
                        ctx.work(2);
                        0.5 * (l + r)
                    } else {
                        ctx.read(src.addr(i))
                    };
                    ctx.write(dst.addr(i), v);
                }
                ctx.phase_end();
            }
        }
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..N {
                out.push(ctx.read::<f64>(a.addr(i)));
            }
        }
        ctx.barrier();
        out
    });
    (vals.into_iter().next().expect("node 0 result"), report, m)
}

fn tmp(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("prescient_metrics_e2e_{}_{tag}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn timeline_reconciles_exactly_with_the_report() {
    let (_, report, m) = run_relaxation(base_cfg().with_metrics(MetricsConfig::on()));
    let t = m.timeline().expect("metrics on");
    t.reconciles_with(&report, 1).expect("telescoping sums must match the report");

    // Every phase instance is cut by every node, in program order.
    let phases = t.phases();
    let phase_groups: Vec<_> = phases.iter().filter(|g| g.phase != 0).collect();
    assert_eq!(phase_groups.len(), 2 * ITERS, "two phases per iteration");
    for (k, g) in phase_groups.iter().enumerate() {
        assert_eq!(g.phase as usize, 1 + k % 2, "program phase order");
        assert_eq!(g.iter, (k / 2) as u64, "iteration ordinals count per phase id");
        assert_eq!(g.records, NODES, "every node cuts every phase instance");
        assert!(g.vtime_ns > 0);
    }
    // The relaxation misses across block edges, so fetch histograms fill.
    assert!(phase_groups.iter().any(|g| g.fetch.n() > 0), "fetch latency recorded");
    // Wire deltas are recorded by node 0 only, on the machine's behalf.
    for r in &t.records {
        assert_eq!(r.wire.is_some(), r.node == 0, "wire deltas come from node 0");
    }
}

#[test]
fn metrics_do_not_perturb_the_run() {
    let (v_off, r_off, m_off) = run_relaxation(base_cfg().with_metrics(MetricsConfig::off()));
    assert!(m_off.timeline().is_none(), "disabled metrics record nothing");
    drop(m_off);
    let (v_on, r_on, _m) = run_relaxation(base_cfg().with_metrics(MetricsConfig::on()));
    assert_eq!(v_off, v_on, "metrics must not change results");
    // The gated perf columns must be bit-identical, not merely close.
    let sig = |r: &RunReport| {
        let t = r.total_stats();
        (
            r.exec_time_ns(),
            t.msgs_out,
            t.data_bytes_in + t.presend_bytes_out,
            t.misses() + t.presend_blocks_out,
            t.misses(),
            t.presend_blocks_out,
            t.presend_useless,
        )
    };
    assert_eq!(sig(&r_off), sig(&r_on), "gated counters must be bit-identical off vs on");
}

#[test]
fn crash_replay_cuts_one_record_per_phase_instance() {
    // Crash-recoverable phases must run through the `ctx.phase` wrapper so
    // the destroyed body can re-run.
    let mut m = Machine::new(
        base_cfg().with_metrics(MetricsConfig::on()).with_crash_plan(CrashPlan::new(2, 3)),
    );
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let sweep = |ctx: &mut NodeCtx, src: &Agg1D<f64>, dst: &Agg1D<f64>| {
        for i in src.my_range(ctx.me()) {
            let v = if i > 0 && i + 1 < N {
                let l: f64 = ctx.read(src.addr(i - 1));
                let r: f64 = ctx.read(src.addr(i + 1));
                0.5 * (l + r)
            } else {
                ctx.read(src.addr(i))
            };
            ctx.write(dst.addr(i), v);
        }
    };
    let (_, report) = m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
        for _ in 0..ITERS {
            ctx.phase(1, &mut (), |ctx, _| sweep(ctx, &a, &b));
            ctx.phase(2, &mut (), |ctx, _| sweep(ctx, &b, &a));
        }
    });
    let t = m.timeline().expect("metrics on");
    // Rollback arithmetic and record deltas are cut from the same
    // counters, so the sums still match exactly through a replay.
    t.reconciles_with(&report, 1).expect("replayed run still reconciles");
    assert!(report.total_stats().replays > 0, "the crash must actually fire");
    // The replayed phase spans first-begin .. replay-commit as ONE record
    // per node — never two. (Gap records all share the key `(0, 0)`, so
    // only real phase groups are pinned to one cut per node.)
    for g in t.phases().iter().filter(|g| g.phase != 0) {
        assert_eq!(
            g.records, NODES,
            "phase {} iter {}: exactly one cut per node, replay included",
            g.phase, g.iter
        );
    }
}

#[test]
fn stream_file_matches_the_teardown_timeline() {
    let path = tmp("stream");
    let (_, report, m) = run_relaxation(base_cfg().with_metrics(MetricsConfig::stream(&path)));
    let timeline = m.timeline().expect("metrics on");
    drop(m); // close the hub, join the publisher, export the timeline

    let stream = std::fs::read_to_string(&path).expect("stream file written");
    let streamed: Vec<PhaseRecord> = stream
        .lines()
        .map(|l| PhaseRecord::parse_line(l).expect("every stream line parses"))
        .collect();
    assert_eq!(streamed, timeline.records, "live stream equals the teardown timeline");
    let rt = RunTimeline::new(NODES, streamed);
    rt.reconciles_with(&report, 1).expect("reparsed stream reconciles");

    // The timeline export rides on the stream path and embeds the same
    // lines verbatim — live and post-hoc views are textually comparable.
    let tj = std::fs::read_to_string(format!("{path}.timeline.json")).expect("timeline exported");
    for line in stream.lines() {
        assert!(tj.contains(line), "stream line missing from timeline json: {line}");
    }
    assert_eq!(tj.matches('{').count(), tj.matches('}').count());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{path}.timeline.json"));
}

#[test]
fn tcp_endpoint_serves_reconciling_prometheus_text() {
    let (_, report, m) = run_relaxation(base_cfg().with_metrics(MetricsConfig::tcp("127.0.0.1:0")));
    let addr = m.metrics_addr().expect("server bound");
    let mut conn = std::net::TcpStream::connect(addr).expect("scrape connects");
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("response");
    assert!(text.starts_with("HTTP/1.1 200"), "got: {}", text.lines().next().unwrap_or(""));
    assert!(text.contains("prescient_phase_records_total"));

    // The scraped per-node cumulative counters are the telescoped record
    // sums, so they must equal the run report's totals exactly.
    let scraped_msgs: u64 = text
        .lines()
        .filter(|l| l.starts_with("prescient_msgs_out_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().expect("sample value"))
        .sum();
    assert_eq!(scraped_msgs, report.total_stats().msgs_out, "scrape reconciles with report");
}
