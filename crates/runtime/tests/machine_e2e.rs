//! End-to-end runtime tests: SPMD programs on live machines, comparing
//! unoptimized (Stache) and optimized (predictive) runs for correctness and
//! for the paper's headline effects (fewer misses, less remote wait).

use prescient_runtime::{Agg1D, Agg2D, Dist1D, Dist2D, Machine, MachineConfig, NodeCtx};

/// Double-buffered 1-D Jacobi relaxation: the canonical nearest-neighbor
/// repetitive producer–consumer pattern (source read in one phase, updated
/// in the other). Returns the final array (in `a`) and the run report.
fn run_relaxation(
    cfg: MachineConfig,
    n: usize,
    iters: usize,
) -> (Vec<f64>, prescient_runtime::RunReport) {
    let mut m = Machine::new(cfg);
    let a = Agg1D::<f64>::new(&m, n, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, n, Dist1D::Block);

    // Initialize: a[i] = i, done by owners.
    let (_, _) = m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
    });

    let sweep = |ctx: &mut NodeCtx, src: &Agg1D<f64>, dst: &Agg1D<f64>| {
        for i in src.my_range(ctx.me()) {
            let v = if i > 0 && i + 1 < n {
                let l: f64 = ctx.read(src.addr(i - 1));
                let r: f64 = ctx.read(src.addr(i + 1));
                ctx.work(2);
                0.5 * (l + r)
            } else {
                ctx.read(src.addr(i))
            };
            ctx.write(dst.addr(i), v);
        }
    };

    let (_, report) = m.run(|ctx: &mut NodeCtx| {
        for _it in 0..iters {
            ctx.phase_begin(1);
            sweep(ctx, &a, &b);
            ctx.phase_end();
            ctx.phase_begin(2);
            sweep(ctx, &b, &a);
            ctx.phase_end();
        }
    });

    // Gather the result (node 0 reads everything).
    let (vals, _) = m.run(|ctx: &mut NodeCtx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..n {
                out.push(ctx.read::<f64>(a.addr(i)));
            }
        }
        ctx.barrier();
        out
    });
    (vals[0].clone(), report)
}

/// Sequential reference of the same relaxation (two Jacobi half-sweeps per
/// iteration).
fn seq_relaxation(n: usize, iters: usize) -> Vec<f64> {
    let mut a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut b = a.clone();
    for _ in 0..iters {
        for i in 1..n - 1 {
            b[i] = 0.5 * (a[i - 1] + a[i + 1]);
        }
        for i in 1..n - 1 {
            a[i] = 0.5 * (b[i - 1] + b[i + 1]);
        }
    }
    a
}

#[test]
fn relaxation_matches_sequential_under_both_protocols() {
    let n = 64;
    let iters = 4;
    let expect = seq_relaxation(n, iters);
    for cfg in [MachineConfig::stache(4, 32), MachineConfig::predictive(4, 32)] {
        let predictive = cfg.protocol.is_predictive();
        let (got, _) = run_relaxation(cfg, n, iters);
        for i in 0..n {
            assert!(
                (got[i] - expect[i]).abs() < 1e-12,
                "mismatch at {i}: {} vs {} (predictive={predictive})",
                got[i],
                expect[i],
            );
        }
    }
}

#[test]
fn predictive_eliminates_steady_state_misses() {
    let n = 64;
    let iters = 6;
    let (_, unopt) = run_relaxation(MachineConfig::stache(4, 32), n, iters);
    let (_, opt) = run_relaxation(MachineConfig::predictive(4, 32), n, iters);

    let mu = unopt.total_stats().misses();
    let mo = opt.total_stats().misses();
    assert!(mo < mu / 2, "optimized run must eliminate most misses: {mo} vs {mu}");
    assert!(
        opt.mean_breakdown().wait_ns < unopt.mean_breakdown().wait_ns / 2,
        "remote wait must drop: {} vs {}",
        opt.mean_breakdown().wait_ns,
        unopt.mean_breakdown().wait_ns
    );
    assert!(opt.local_fraction() > unopt.local_fraction());
    // And the pre-sends actually happened.
    assert!(opt.total_stats().presend_blocks_out > 0);
    assert_eq!(unopt.total_stats().presend_blocks_out, 0);
}

#[test]
fn twod_stencil_rowblock_correctness() {
    // One Jacobi sweep on a 2-D grid (Figure 2's stencil), row-block
    // distributed; checks the halo rows cross node boundaries correctly.
    let rows = 16;
    let cols = 8;
    let mut m = Machine::new(MachineConfig::predictive(4, 32));
    let g = Agg2D::<f64>::new(&m, rows, cols, Dist2D::RowBlock);
    let h = Agg2D::<f64>::new(&m, rows, cols, Dist2D::RowBlock);

    m.run(|ctx: &mut NodeCtx| {
        for i in g.my_rows(ctx.me()) {
            for j in 0..cols {
                ctx.write(g.addr(i, j), (i * cols + j) as f64);
            }
        }
        ctx.barrier();
    });

    m.run(|ctx: &mut NodeCtx| {
        for _iter in 0..3 {
            ctx.phase_begin(1);
            for i in g.my_rows(ctx.me()) {
                for j in 0..cols {
                    if i > 0 && i + 1 < rows && j > 0 && j + 1 < cols {
                        let up: f64 = ctx.read(g.addr(i - 1, j));
                        let dn: f64 = ctx.read(g.addr(i + 1, j));
                        let le: f64 = ctx.read(g.addr(i, j - 1));
                        let ri: f64 = ctx.read(g.addr(i, j + 1));
                        ctx.work(4);
                        ctx.write(h.addr(i, j), 0.25 * (up + dn + le + ri));
                    } else {
                        let v: f64 = ctx.read(g.addr(i, j));
                        ctx.write(h.addr(i, j), v);
                    }
                }
            }
            ctx.phase_end();
            // copy back
            ctx.phase_begin(2);
            for i in g.my_rows(ctx.me()) {
                for j in 0..cols {
                    let v: f64 = ctx.read(h.addr(i, j));
                    ctx.write(g.addr(i, j), v);
                }
            }
            ctx.phase_end();
        }
    });

    // Sequential reference.
    let mut a: Vec<f64> = (0..rows * cols).map(|k| k as f64).collect();
    for _ in 0..3 {
        let mut b = a.clone();
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                b[i * cols + j] = 0.25
                    * (a[(i - 1) * cols + j]
                        + a[(i + 1) * cols + j]
                        + a[i * cols + j - 1]
                        + a[i * cols + j + 1]);
            }
        }
        a = b;
    }

    let (vals, _) = m.run(|ctx: &mut NodeCtx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..rows {
                for j in 0..cols {
                    out.push(ctx.read::<f64>(g.addr(i, j)));
                }
            }
        }
        ctx.barrier();
        out
    });
    for (k, (&got, &want)) in vals[0].iter().zip(a.iter()).enumerate() {
        assert!((got - want).abs() < 1e-12, "cell {k}: {got} vs {want}");
    }
}

#[test]
fn allreduce_sums_across_nodes() {
    let mut m = Machine::new(MachineConfig::stache(4, 32));
    let (results, _) = m.run(|ctx: &mut NodeCtx| {
        let me = ctx.me() as f64;
        let mut v = vec![me, 2.0 * me, 1.0];
        ctx.allreduce_sum(&mut v);
        v
    });
    for r in &results {
        assert_eq!(r, &vec![6.0, 12.0, 4.0]); // 0+1+2+3, doubled, count
    }
}

#[test]
fn allreduce_repeated_rounds() {
    let mut m = Machine::new(MachineConfig::stache(3, 32));
    let (results, _) = m.run(|ctx: &mut NodeCtx| {
        let mut acc = 0.0;
        for round in 0..5u64 {
            let mut v = vec![(ctx.me() as u64 + round) as f64];
            ctx.allreduce_sum(&mut v);
            acc += v[0];
        }
        acc
    });
    // Each round sums (0+1+2) + 3*round.
    let expect: f64 = (0..5u64).map(|r| 3.0 + 3.0 * r as f64).sum();
    for r in results {
        assert_eq!(r, expect);
    }
}

#[test]
fn allreduce_max_picks_maximum() {
    let mut m = Machine::new(MachineConfig::stache(4, 32));
    let (results, _) = m.run(|ctx: &mut NodeCtx| ctx.allreduce_max(ctx.me() as f64 * 1.5));
    for r in results {
        assert_eq!(r, 4.5);
    }
}

#[test]
fn dynamic_local_alloc_is_shared() {
    // A node allocates a record during a phase; other nodes can read it.
    let mut m = Machine::new(MachineConfig::stache(3, 32));
    let (addrs, _) = m.run(|ctx: &mut NodeCtx| {
        let a = if ctx.me() == 2 {
            let a = ctx.alloc_local(8, 8);
            ctx.write(a, 777u64);
            a.0
        } else {
            0
        };
        ctx.barrier();
        a
    });
    let addr = prescient_tempest::GAddr(addrs[2]);
    let (vals, _) = m.run(move |ctx: &mut NodeCtx| {
        let v: u64 = ctx.read(addr);
        ctx.barrier();
        v
    });
    assert_eq!(vals, vec![777, 777, 777]);
}

#[test]
fn vtime_breakdown_is_consistent() {
    let (_, report) = run_relaxation(MachineConfig::predictive(4, 32), 64, 3);
    for nr in &report.per_node {
        let b = nr.breakdown;
        assert_eq!(
            b.total_ns(),
            b.compute_ns + b.wait_ns + b.presend_ns + b.synch_ns,
            "breakdown must sum"
        );
        assert!(b.compute_ns > 0, "compute time must be charged");
    }
    // Deterministic virtual time: all nodes end at (nearly) the same
    // virtual instant because the program ends with a barrier.
    let totals: Vec<u64> = report.per_node.iter().map(|n| n.breakdown.total_ns()).collect();
    let max = *totals.iter().max().unwrap();
    let min = *totals.iter().min().unwrap();
    assert!(max - min <= 1, "final barrier aligns clocks: {totals:?}");
}

#[test]
fn machine_stays_coherent_after_runs() {
    // Run the stencil under both protocols and verify the global
    // single-writer / data-agreement invariants at quiescence.
    for cfg in [MachineConfig::stache(4, 32), MachineConfig::predictive(4, 32)] {
        let n = 64;
        let mut m = Machine::new(cfg);
        let a = Agg1D::<f64>::new(&m, n, Dist1D::Block);
        let b = Agg1D::<f64>::new(&m, n, Dist1D::Block);
        m.run(|ctx: &mut NodeCtx| {
            for i in a.my_range(ctx.me()) {
                ctx.write(a.addr(i), i as f64);
                ctx.write(b.addr(i), 0.0);
            }
            ctx.barrier();
        });
        m.assert_coherent();
        m.run(|ctx: &mut NodeCtx| {
            for _ in 0..4 {
                ctx.phase_begin(1);
                for i in a.my_range(ctx.me()) {
                    let l = if i > 0 { ctx.read::<f64>(a.addr(i - 1)) } else { 0.0 };
                    ctx.write(b.addr(i), l + 1.0);
                }
                ctx.phase_end();
                ctx.phase_begin(2);
                for i in a.my_range(ctx.me()) {
                    let v: f64 = ctx.read(b.addr(i));
                    ctx.write(a.addr(i), v);
                }
                ctx.phase_end();
            }
        });
        m.assert_coherent();
    }
}

#[test]
fn deterministic_results_and_stable_virtual_time() {
    // Same program, same config → bit-identical *results*. Virtual time
    // and the miss/pre-send split are reproducible only up to scheduling
    // jitter (concurrent requests race to their homes, and a block may
    // arrive by pre-send before or after its consumer faults), so the
    // invariant for those is total data movement plus a small tolerance.
    let (v1, r1) = run_relaxation(MachineConfig::predictive(4, 32), 64, 4);
    let (v2, r2) = run_relaxation(MachineConfig::predictive(4, 32), 64, 4);
    assert_eq!(v1, v2, "relaxation results must be bit-identical");
    let moved = |r: &prescient_runtime::RunReport| {
        let s = r.total_stats();
        s.misses() + s.presend_blocks_out
    };
    assert_eq!(moved(&r1), moved(&r2), "total blocks moved must match");
    // This program is tiny (~2.3 ms of virtual time), so one different
    // waiter chain shifts the total by several percent; the bound is
    // correspondingly loose.
    let (t1, t2) = (r1.exec_time_ns() as f64, r2.exec_time_ns() as f64);
    assert!((t1 - t2).abs() / t1.max(t2) < 0.25, "virtual time diverged: {t1} vs {t2}");
}
