//! Property test: across random relaxation shapes (node count, array
//! length, iteration count), the trace stream always reconciles with the
//! counter subsystem — every miss opens exactly one fault span, every
//! span closes, and install events cover every pre-sent block.
//!
//! The fixed-shape twin with stricter assertions lives in `trace_e2e.rs`.

use std::time::Duration;

use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};
use prescient_stache::RetryConfig;
use prescient_tempest::trace::unpack_peer_count;
use prescient_tempest::{EventKind, TraceConfig};
use proptest::prelude::*;

fn run_and_check(nodes: usize, n: usize, iters: usize) {
    let mut p = std::env::temp_dir();
    p.push(format!("prescient_proptest_trace_{}", std::process::id()));
    std::env::set_var("PRESCIENT_TRACE_OUT", p.to_string_lossy().into_owned());

    let cfg = MachineConfig::predictive(nodes, 32)
        .with_retry(RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 })
        .with_trace(TraceConfig::with_capacity(1 << 15));
    let mut m = Machine::new(cfg);
    let a = Agg1D::<f64>::new(&m, n, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, n, Dist1D::Block);
    let (_, report) = m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
        for _ in 0..iters {
            for (phase, src, dst) in [(1u32, &a, &b), (2, &b, &a)] {
                ctx.phase_begin(phase);
                for i in src.my_range(ctx.me()) {
                    let v = if i > 0 && i + 1 < n {
                        let l: f64 = ctx.read(src.addr(i - 1));
                        let r: f64 = ctx.read(src.addr(i + 1));
                        0.5 * (l + r)
                    } else {
                        ctx.read(src.addr(i))
                    };
                    ctx.write(dst.addr(i), v);
                }
                ctx.phase_end();
            }
        }
    });

    let (events, dropped) = m.trace_events();
    assert_eq!(dropped, 0, "ring must not wrap at this capacity");
    for nr in &report.per_node {
        let node = nr.node;
        let count = |k: EventKind| -> u64 {
            events.iter().filter(|e| e.node == node && e.kind == k).count() as u64
        };
        assert_eq!(count(EventKind::FaultBegin), nr.stats.misses(), "node {node}: fault spans");
        assert_eq!(count(EventKind::FaultBegin), count(EventKind::FaultEnd), "node {node}");
        let installed: u64 = events
            .iter()
            .filter(|e| e.node == node && e.kind == EventKind::PresendInstall)
            .map(|e| unpack_peer_count(e.b).1)
            .sum();
        assert_eq!(installed, nr.stats.presend_blocks_in, "node {node}: installs");
        assert_eq!(count(EventKind::SchedRecord), nr.stats.sched_records, "node {node}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random machine/program shapes keep the trace and the counters in
    /// exact agreement.
    #[test]
    fn trace_reconciles_across_shapes(
        nodes in 2usize..5,
        n in 24usize..64,
        iters in 1usize..4,
    ) {
        run_and_check(nodes, n, iters);
    }
}
