//! Robustness end-to-end tests (DESIGN.md §12): mid-phase panics become
//! structured errors instead of hangs, the liveness watchdog converts a
//! fully partitioned (deadlocked) machine into a bounded-time
//! [`MachineError`], and the checkpoint/recovery trace events appear in
//! the protocol event stream.

use std::time::{Duration, Instant};

use prescient_runtime::{
    Agg1D, Dist1D, FailureKind, Machine, MachineConfig, NodeCtx, WatchdogConfig,
};
use prescient_stache::RetryConfig;
use prescient_tempest::trace::EventKind;
use prescient_tempest::{CrashPlan, FaultPlan, PartitionSpec, TraceConfig};

const NODES: usize = 4;
const N: usize = 256;

/// One relaxation sweep over a shared array — enough traffic that every
/// node blocks on its neighbors.
fn sweep(ctx: &mut NodeCtx, a: &Agg1D<f64>, b: &Agg1D<f64>) {
    let n = a.len();
    for i in a.my_range(ctx.me()) {
        let v = if i > 0 && i + 1 < n {
            let l: f64 = ctx.read(a.addr(i - 1));
            let r: f64 = ctx.read(a.addr(i + 1));
            0.5 * (l + r)
        } else {
            ctx.read(a.addr(i))
        };
        ctx.write(b.addr(i), v);
    }
}

fn init(m: &mut Machine, a: &Agg1D<f64>, b: &Agg1D<f64>) {
    m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
    });
}

// ---- panic isolation ----------------------------------------------------

#[test]
fn mid_phase_panic_becomes_structured_error_not_a_hang() {
    // Regression for the panic-hang class: before try_run, a panicking
    // compute thread left its siblings blocked in the barrier forever and
    // the std::thread::scope join deadlocked the whole process.
    let start = Instant::now();
    let mut m = Machine::new(MachineConfig::predictive(NODES, 64));
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    init(&mut m, &a, &b);

    let err = m
        .try_run(|ctx: &mut NodeCtx| {
            ctx.phase_begin(1);
            sweep(ctx, &a, &b);
            if ctx.me() == 1 {
                panic!("injected application bug on node 1");
            }
            ctx.phase_end();
            ctx.barrier();
        })
        .expect_err("a panicking node must fail the run");

    assert_eq!(err.kind, FailureKind::Panic);
    assert_eq!(err.node, Some(1), "the panicking node is identified");
    assert!(
        err.message.contains("injected application bug"),
        "the panic message survives: {}",
        err.message
    );
    assert_eq!(err.nodes.len(), NODES, "per-node protocol state is attached");
    // The whole teardown (including Machine drop later) must be prompt —
    // the old behavior was an infinite hang.
    assert!(start.elapsed() < Duration::from_secs(60), "teardown must not hang");
    drop(m);
    assert!(start.elapsed() < Duration::from_secs(60), "drop must not hang");
}

#[test]
fn run_panics_with_the_structured_report() {
    // `run` (the panicking wrapper) must carry the MachineError display.
    let mut m = Machine::new(MachineConfig::stache(2, 64));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|ctx: &mut NodeCtx| {
            if ctx.me() == 0 {
                panic!("boom");
            }
            ctx.barrier();
        });
    }))
    .expect_err("must panic");
    let msg = caught.downcast_ref::<String>().expect("string panic payload");
    assert!(msg.contains("machine panic"), "structured prefix: {msg}");
    assert!(msg.contains("boom"), "original message: {msg}");
}

#[test]
fn raw_phase_end_refuses_to_swallow_a_replay() {
    // Crash injected, but the program uses the raw phase_end() directive:
    // the runtime must fail loudly, pointing at NodeCtx::phase, rather
    // than silently committing a destroyed phase.
    let mut m =
        Machine::new(MachineConfig::predictive(NODES, 64).with_crash_plan(CrashPlan::new(1, 1)));
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    init(&mut m, &a, &b);

    let err = m
        .try_run(|ctx: &mut NodeCtx| {
            ctx.phase_begin(1);
            sweep(ctx, &a, &b);
            ctx.phase_end();
        })
        .expect_err("raw phase_end under a crash must error");
    assert_eq!(err.kind, FailureKind::Panic);
    assert!(
        err.message.contains("NodeCtx::phase"),
        "the error teaches the recoverable API: {}",
        err.message
    );
}

// ---- the liveness watchdog ----------------------------------------------

#[test]
fn watchdog_converts_full_partition_into_bounded_deadlock_error() {
    // Sever every inter-node link from the first send onward. Every fetch
    // retries forever (retries are excluded from "useful progress"), so
    // without the watchdog this run would hang until the retry budget's
    // "machine wedged" panic — and hang forever if retries were unbounded.
    let wd = WatchdogConfig { poll: Duration::from_millis(25), stalled_polls: 8 };
    let start = Instant::now();
    let mut m = Machine::new(
        MachineConfig::stache(NODES, 64)
            .with_faults(FaultPlan::new(7).partitioned(PartitionSpec::total()))
            .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 1_000_000 })
            .with_watchdog(wd)
            .with_trace(TraceConfig::on()),
    );
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    // No init run: the first sweep's remote reads block immediately.

    let err = m
        .try_run(|ctx: &mut NodeCtx| {
            sweep(ctx, &a, &b);
            ctx.barrier();
        })
        .expect_err("a fully partitioned machine must be declared dead");

    // Classification: no crash is pending, so this is a deadlock.
    assert_eq!(err.kind, FailureKind::Deadlock);
    assert!(err.message.contains("no useful progress"), "{}", err.message);
    assert!(err.message.contains("deadlock"), "{}", err.message);
    // The report names the blocked nodes and their protocol state.
    assert_eq!(err.nodes.len(), NODES);
    assert!(
        err.nodes.iter().any(|s| s.outstanding_fetch > 0),
        "some node must be blocked on a fetch: {err}"
    );
    assert!(err.nodes.iter().any(|s| s.retries > 0), "retries tick during the partition: {err}");
    // The last trace events ride along (tracing was on).
    assert!(!err.trace_tail.is_empty(), "trace tail attached");
    // Detection is wall-clock bounded: budget (200ms) plus scheduling and
    // teardown slack — far below the >25 000s the retry budget would take.
    assert!(
        start.elapsed() < wd.budget() + Duration::from_secs(30),
        "watchdog must fire within its budget plus slack, took {:?}",
        start.elapsed()
    );
    let (events, _) = m.trace_events();
    assert!(events.iter().any(|e| e.kind == EventKind::WatchdogFire), "WatchdogFire event emitted");
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_run() {
    // A healthy machine with an aggressive watchdog must not be killed:
    // progress counters tick, so the stall counter never accumulates.
    let mut m = Machine::new(
        MachineConfig::predictive(NODES, 64)
            .with_watchdog(WatchdogConfig { poll: Duration::from_millis(10), stalled_polls: 3 })
            .validated(),
    );
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    init(&mut m, &a, &b);
    for _ in 0..3 {
        m.try_run(|ctx: &mut NodeCtx| {
            for _ in 0..4 {
                ctx.phase_begin(1);
                sweep(ctx, &a, &b);
                ctx.phase_end();
                ctx.phase_begin(2);
                sweep(ctx, &b, &a);
                ctx.phase_end();
            }
        })
        .expect("healthy run must not be watchdogged");
    }
}

// ---- recovery trace events ----------------------------------------------

#[test]
fn recovery_emits_the_full_event_sequence() {
    let mut m = Machine::new(
        MachineConfig::predictive(NODES, 64)
            .with_crash_plan(CrashPlan::new(2, 3))
            .with_trace(TraceConfig::on())
            .validated(),
    );
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    init(&mut m, &a, &b);

    let (_, report) = m.run(|ctx: &mut NodeCtx| {
        for _ in 0..3 {
            ctx.phase(1, &mut (), |ctx, _| sweep(ctx, &a, &b));
            ctx.phase(2, &mut (), |ctx, _| sweep(ctx, &b, &a));
        }
    });

    let t = report.total_stats();
    assert_eq!(t.recoveries, NODES as u64);
    assert_eq!(t.replays, NODES as u64);
    // 6 committed phases + 1 replayed phase, every node checkpoints each.
    // A checkpoint's snapshot is taken *after* its own counter bump (the
    // cut is self-consistent), so the rollback keeps the destroyed
    // phase's checkpoint and the replay adds another: 7 per node.
    assert_eq!(t.checkpoints, 7 * NODES as u64, "replayed phase re-checkpoints");

    let (events, _) = m.trace_events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    // The crash fires once, on one node.
    assert_eq!(count(EventKind::Crash), 1);
    // Every node opens and closes a recovery span once.
    assert_eq!(count(EventKind::RecoveryBegin), NODES);
    assert_eq!(count(EventKind::RecoveryEnd), NODES);
    // Checkpoint spans: the rings hold the *physical* history — 6
    // committed + 1 replayed phase_begin per node.
    assert_eq!(count(EventKind::CheckpointBegin), 7 * NODES);
    assert_eq!(count(EventKind::CheckpointEnd), 7 * NODES);
    // No watchdog ran.
    assert_eq!(count(EventKind::WatchdogFire), 0);
}

// ---- checkpointing without a crash is inert -----------------------------

#[test]
fn checkpointing_alone_leaves_gated_counters_untouched() {
    // Satellite guarantee: compiling in + enabling checkpoints (without a
    // crash) must not change any gated counter — only the never-gated
    // checkpoint columns may differ.
    let run = |ckpts: bool| {
        let mut m = Machine::new(MachineConfig::predictive(NODES, 64).with_checkpoints(ckpts));
        let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
        let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
        init(&mut m, &a, &b);
        let (_, report) = m.run(|ctx: &mut NodeCtx| {
            for _ in 0..4 {
                ctx.phase(1, &mut (), |ctx, _| sweep(ctx, &a, &b));
                ctx.phase(2, &mut (), |ctx, _| sweep(ctx, &b, &a));
            }
        });
        report
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(on.exec_time_ns(), off.exec_time_ns(), "vtime is checkpoint-invariant");
    let (ts_on, ts_off) = (on.total_stats(), off.total_stats());
    assert_eq!(ts_on.msgs_out, ts_off.msgs_out, "message counts are checkpoint-invariant");
    assert_eq!(ts_on.misses(), ts_off.misses());
    assert_eq!(ts_on.presend_blocks_out, ts_off.presend_blocks_out);
    assert_eq!(ts_on.data_bytes_in, ts_off.data_bytes_in);
    assert_eq!(ts_off.checkpoints, 0);
    assert_eq!(ts_on.checkpoints, 8 * NODES as u64, "one checkpoint per node per phase");
    assert!(ts_on.checkpoint_bytes > 0);
}
