//! Traffic-aware home placement (DESIGN.md §14): schedule-guided remap
//! and phase-boundary online migration.
//!
//! The contract these tests pin down: placement may only change *where*
//! directory entries live — application results and the demand-fetch
//! pattern are untouched. Concretely, against a static-layout run of the
//! same program, a placed run must keep the final values bit-identical
//! and `blocks_moved` (misses, under plain Stache) exactly equal, while
//! message counts are allowed to drop — and do, because moving a home to
//! its dominant requester removes the third-party hops of §3.2.
//!
//! Every leg uses a non-zero `home_shift` as the deliberately bad static
//! layout: the apps allocate owner-homed, so the unshifted default is
//! already placement-optimal and there would be nothing to recover.

use prescient_runtime::{
    Agg1D, Dist1D, FabricKind, Machine, MachineConfig, NodeCtx, PlacementSpec, RunReport,
};
use prescient_stache::PlacementConfig;
use prescient_tempest::{CrashPlan, HomeMap};

const NODES: usize = 4;
const N: usize = 64;
const ITERS: usize = 6;

/// Aggressive hysteresis so migrations trigger inside a short test run.
fn eager() -> PlacementConfig {
    PlacementConfig { min_count: 4, dominance_pct: 60, max_per_window: 4096 }
}

/// The double-buffered Jacobi relaxation from `machine_e2e`, returning the
/// final array (read on node 0) and the measured run's report.
fn relax(cfg: MachineConfig) -> (Vec<f64>, RunReport) {
    let mut m = Machine::new(cfg);
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
    });
    let sweep = |ctx: &mut NodeCtx, src: &Agg1D<f64>, dst: &Agg1D<f64>| {
        for i in src.my_range(ctx.me()) {
            let v = if i > 0 && i + 1 < N {
                let l: f64 = ctx.read(src.addr(i - 1));
                let r: f64 = ctx.read(src.addr(i + 1));
                0.5 * (l + r)
            } else {
                ctx.read(src.addr(i))
            };
            ctx.write(dst.addr(i), v);
        }
    };
    // `NodeCtx::phase` (not the raw directives) so injected crashes can
    // replay the destroyed phase; without a crash plan it is identical.
    let (_, report) = m.run(|ctx: &mut NodeCtx| {
        for _ in 0..ITERS {
            ctx.phase(1, &mut (), |ctx, ()| sweep(ctx, &a, &b));
            ctx.phase(2, &mut (), |ctx, ()| sweep(ctx, &b, &a));
        }
    });
    let (vals, _) = m.run(|ctx: &mut NodeCtx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..N {
                out.push(ctx.read::<f64>(a.addr(i)));
            }
        }
        ctx.barrier();
        out
    });
    (vals[0].clone(), report)
}

fn assert_same_values(tag: &str, base: &[f64], got: &[f64]) {
    assert_eq!(base.len(), got.len(), "{tag}: result length");
    for (i, (b, g)) in base.iter().zip(got).enumerate() {
        assert_eq!(b.to_bits(), g.to_bits(), "{tag}: value {i} diverged ({b} vs {g})");
    }
}

/// The placement contract on one fabric backend: identical results,
/// identical demand misses, strictly fewer messages, and real migration
/// activity (homes moved, stale-layout requests forwarded).
fn online_contract(fabric: FabricKind) {
    let base = MachineConfig::stache(NODES, 32).with_fabric(fabric).with_home_shift(1);
    let (v0, r0) = relax(base.clone().validated());
    let (v1, r1) = relax(base.with_placement(PlacementSpec::Online(eager())).validated());
    let tag = format!("online/{fabric:?}");
    assert_same_values(&tag, &v0, &v1);
    let (s0, s1) = (r0.total_stats(), r1.total_stats());
    assert_eq!(s1.misses(), s0.misses(), "{tag}: migration must not change demand misses");
    assert_eq!(r1.blocks_moved(), r0.blocks_moved(), "{tag}: blocks_moved must be bit-identical");
    assert!(s1.migrations > 0, "{tag}: the window must actually migrate blocks");
    assert!(s1.forwards > 0, "{tag}: stale-layout requests must be forwarded");
    assert_eq!(s0.migrations, 0, "{tag}: static leg must not migrate");
    assert!(
        s1.msgs_out < s0.msgs_out,
        "{tag}: migrated homes must cut messages ({} vs {})",
        s1.msgs_out,
        s0.msgs_out
    );
}

#[test]
fn online_migration_preserves_results_and_cuts_messages() {
    online_contract(FabricKind::Channel);
}

#[test]
fn online_migration_holds_on_the_sharded_backend() {
    online_contract(FabricKind::Sharded { shards: 2 });
}

/// Offline leg: learn the owner mapping from the aggregate layout (what
/// `prescient-trace emit-remap` computes from a recorded run), apply it as
/// a `Remap` overlay over the shifted layout, and require the same
/// contract — same values, same misses, fewer messages, no migrations.
#[test]
fn schedule_guided_remap_matches_static_and_cuts_messages() {
    // Throwaway machine with identical allocations, to learn block ids.
    let probe = Machine::new(MachineConfig::stache(NODES, 32).with_fabric(FabricKind::Channel));
    let pa = Agg1D::<f64>::new(&probe, N, Dist1D::Block);
    let pb = Agg1D::<f64>::new(&probe, N, Dist1D::Block);
    let mut map = HomeMap::new();
    for agg in [&pa, &pb] {
        for node in 0..NODES as u16 {
            for i in agg.my_range(node) {
                map.insert(probe.layout().block_of(agg.addr(i)), node);
            }
        }
    }
    drop(probe);
    assert!(!map.is_empty());

    // The remap text format round-trips exactly.
    assert_eq!(HomeMap::parse(&map.to_text(), NODES).expect("round-trip"), map);

    let base = MachineConfig::stache(NODES, 32).with_fabric(FabricKind::Channel).with_home_shift(1);
    let (v0, r0) = relax(base.clone().validated());
    let remapped = map.len() as u64;
    let (v1, r1) = relax(base.with_placement(PlacementSpec::Remap(map)).validated());
    assert_same_values("remap", &v0, &v1);
    let (s0, s1) = (r0.total_stats(), r1.total_stats());
    assert_eq!(s1.misses(), s0.misses(), "remap must not change demand misses");
    assert_eq!(r1.blocks_moved(), r0.blocks_moved(), "blocks_moved must be bit-identical");
    assert_eq!(s1.migrations, 0, "remap is offline; no online migrations");
    assert_eq!(s1.remapped_blocks, remapped, "every overlay entry is accounted");
    assert!(
        s1.msgs_out < s0.msgs_out,
        "owner remap must cut messages ({} vs {})",
        s1.msgs_out,
        s0.msgs_out
    );
}

/// Predictive protocol on top of online migration: the per-block schedule
/// entries (and pre-send ownership) must follow the home, so results stay
/// bit-identical and pre-sending keeps working from the new homes.
#[test]
fn predictive_schedules_survive_home_migration() {
    let base =
        MachineConfig::predictive(NODES, 32).with_fabric(FabricKind::Channel).with_home_shift(1);
    let (v0, r0) = relax(base.clone().validated());
    let (v1, r1) = relax(base.with_placement(PlacementSpec::Online(eager())).validated());
    assert_same_values("predictive+online", &v0, &v1);
    let (s0, s1) = (r0.total_stats(), r1.total_stats());
    assert!(s1.migrations > 0, "migrations must fire under the predictive protocol");
    assert!(s1.presend_blocks_out > 0, "migrated schedules must keep pre-sending");
    // A reader that became the home is served from home memory instead of
    // a push, so pre-send volume may only shrink — never grow.
    assert!(
        s1.presend_blocks_out <= s0.presend_blocks_out,
        "migration must not inflate pre-sends ({} vs {})",
        s1.presend_blocks_out,
        s0.presend_blocks_out
    );
}

/// Crash/recovery with online placement: a crash after migration windows
/// have moved homes rolls back to a checkpoint that already contains the
/// forwarding stubs, the moved directory entries and the placement state.
/// The recovered run must match the fault-free online run bit-for-bit in
/// the gated observables.
#[test]
fn crash_after_migration_recovers_bit_identically() {
    let online = MachineConfig::stache(NODES, 32)
        .with_fabric(FabricKind::Channel)
        .with_home_shift(1)
        .with_placement(PlacementSpec::Online(eager()));
    let (v0, r0) = relax(online.clone().validated());
    assert!(r0.total_stats().migrations > 0, "baseline must migrate before the crash point");
    // Version 7 is a phase_begin well after the first migration windows
    // (min_count 4 trips around the 4th window), so rollback restores a
    // state with live stubs and a non-empty overlay.
    let (v1, r1) = relax(online.with_crash_plan(CrashPlan::new(2, 7)).validated());
    assert_same_values("crash+online", &v0, &v1);
    let (s0, s1) = (r0.total_stats(), r1.total_stats());
    assert_eq!(s1.misses(), s0.misses(), "recovered misses must equal fault-free");
    assert_eq!(r1.blocks_moved(), r0.blocks_moved(), "recovered blocks_moved must be identical");
    assert_eq!(s1.migrations, s0.migrations, "replayed windows must re-decide identically");
    assert_eq!(s1.recoveries, NODES as u64, "every node ran the recovery protocol once");
}
