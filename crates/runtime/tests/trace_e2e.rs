//! End-to-end tests of protocol event tracing: the trace must reconcile
//! with the counter subsystem, must not perturb the traced computation,
//! and must export loadable files at machine teardown.

use std::sync::Mutex;
use std::time::Duration;

use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx, RunReport};
use prescient_stache::RetryConfig;
use prescient_tempest::trace::unpack_peer_count;
use prescient_tempest::{EventKind, TraceConfig};

/// Traced machines export files at drop, and the export basename comes
/// from the process-global `PRESCIENT_TRACE_OUT`; serialize these tests
/// so exports never interleave.
static EXPORT_LOCK: Mutex<()> = Mutex::new(());

fn set_out(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("prescient_trace_e2e_{}_{tag}", std::process::id()));
    let base = p.to_string_lossy().into_owned();
    std::env::set_var("PRESCIENT_TRACE_OUT", &base);
    base
}

const NODES: usize = 4;
const N: usize = 64;
const ITERS: usize = 4;

fn base_cfg() -> MachineConfig {
    // Generous timeout: on a clean fabric a retry can only be host-load
    // noise, which would perturb the traced event stream.
    MachineConfig::predictive(NODES, 32)
        .with_retry(RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 })
}

fn traced_cfg() -> MachineConfig {
    base_cfg().with_trace(TraceConfig::with_capacity(1 << 15))
}

/// Init + double-buffered relaxation + gather in ONE run, so the run
/// report's counters cover exactly what the trace rings saw.
fn run_relaxation(cfg: MachineConfig) -> (Vec<f64>, RunReport, Machine) {
    let mut m = Machine::new(cfg);
    let a = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let b = Agg1D::<f64>::new(&m, N, Dist1D::Block);
    let (vals, report) = m.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), i as f64);
        }
        ctx.barrier();
        for _ in 0..ITERS {
            for (phase, src, dst) in [(1u32, &a, &b), (2, &b, &a)] {
                ctx.phase_begin(phase);
                for i in src.my_range(ctx.me()) {
                    let v = if i > 0 && i + 1 < N {
                        let l: f64 = ctx.read(src.addr(i - 1));
                        let r: f64 = ctx.read(src.addr(i + 1));
                        ctx.work(2);
                        0.5 * (l + r)
                    } else {
                        ctx.read(src.addr(i))
                    };
                    ctx.write(dst.addr(i), v);
                }
                ctx.phase_end();
            }
        }
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..N {
                out.push(ctx.read::<f64>(a.addr(i)));
            }
        }
        ctx.barrier();
        out
    });
    (vals.into_iter().next().expect("node 0 result"), report, m)
}

#[test]
fn trace_reconciles_with_counters() {
    let _g = EXPORT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_out("reconcile");
    let (_, report, m) = run_relaxation(traced_cfg());
    let (events, dropped) = m.trace_events();
    assert_eq!(dropped, 0, "ring must not wrap at this capacity");
    assert!(!events.is_empty(), "traced run must record events");
    for nr in &report.per_node {
        let node = nr.node;
        let count = |k: EventKind| -> u64 {
            events.iter().filter(|e| e.node == node && e.kind == k).count() as u64
        };
        assert_eq!(
            count(EventKind::FaultBegin),
            nr.stats.misses(),
            "node {node}: every miss opens exactly one fault span"
        );
        assert_eq!(
            count(EventKind::FaultBegin),
            count(EventKind::FaultEnd),
            "node {node}: the program ends quiescent, so every span closes"
        );
        let installed: u64 = events
            .iter()
            .filter(|e| e.node == node && e.kind == EventKind::PresendInstall)
            .map(|e| unpack_peer_count(e.b).1)
            .sum();
        assert_eq!(
            installed, nr.stats.presend_blocks_in,
            "node {node}: install events cover every pre-sent block"
        );
        assert_eq!(
            count(EventKind::SchedRecord),
            nr.stats.sched_records,
            "node {node}: record events match the home-side counter"
        );
        assert_eq!(count(EventKind::Retry), nr.stats.retries, "node {node}: retries reconcile");
    }
    // Pre-sends must actually flow for the install checks to mean much.
    assert!(report.total_stats().presend_blocks_in > 0);
}

#[test]
fn same_config_runs_trace_identically() {
    let _g = EXPORT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_out("determinism");
    let (v1, _, m1) = run_relaxation(traced_cfg());
    let (e1, d1) = m1.trace_events();
    drop(m1);
    let (v2, _, m2) = run_relaxation(traced_cfg());
    let (e2, d2) = m2.trace_events();
    assert_eq!(v1, v2, "results must be bit-identical");
    assert_eq!((d1, d2), (0, 0));
    // Directive-level events are fully deterministic: same multiset of
    // (node, kind, phase, a) across runs. (Wire, retry, and fault-layer
    // events are timing-dependent; demand/pre-send interleavings are
    // deterministic only in aggregate — checked below.)
    let stable = |evs: &[prescient_tempest::TraceEvent]| {
        let mut v: Vec<(u16, u8, u32, u64)> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::PhaseBegin
                        | EventKind::PhaseEnd
                        | EventKind::PresendStart
                        | EventKind::BarrierEnter
                )
            })
            .map(|e| (e.node, e.kind as u8, e.phase, e.a))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(stable(&e1), stable(&e2), "directive event multisets must match");
    // The blocks-moved aggregate (faults + pre-sent blocks) is the
    // deterministic quantity the perf gate also pins.
    let moved = |evs: &[prescient_tempest::TraceEvent]| -> u64 {
        let faults = evs.iter().filter(|e| e.kind == EventKind::FaultBegin).count() as u64;
        let installed: u64 = evs
            .iter()
            .filter(|e| e.kind == EventKind::PresendInstall)
            .map(|e| unpack_peer_count(e.b).1)
            .sum();
        faults + installed
    };
    assert_eq!(moved(&e1), moved(&e2), "traced blocks-moved must match");
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let _g = EXPORT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_out("perturb");
    let (v_off, r_off, m_off) = run_relaxation(base_cfg().with_trace(TraceConfig::off()));
    assert_eq!(m_off.trace_events().0.len(), 0, "disabled tracer records nothing");
    drop(m_off);
    let (v_on, r_on, _m_on) = run_relaxation(traced_cfg());
    assert_eq!(v_off, v_on, "tracing must not change results");
    let moved = |r: &RunReport| {
        let t = r.total_stats();
        t.misses() + t.presend_blocks_out
    };
    assert_eq!(moved(&r_off), moved(&r_on), "tracing must not change data movement");
}

#[test]
fn teardown_exports_loadable_files() {
    let _g = EXPORT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let base = set_out("export");
    let (_, _, m) = run_relaxation(traced_cfg());
    drop(m);
    let jsonl = std::fs::read_to_string(format!("{base}.jsonl")).expect("jsonl exported");
    let chrome = std::fs::read_to_string(format!("{base}.json")).expect("chrome json exported");
    assert!(jsonl.lines().count() > 100, "paper-style run must trace many events");
    let first = jsonl.lines().next().expect("non-empty");
    assert!(first.starts_with("{\"node\":") && first.ends_with('}'), "flat JSONL: {first}");
    assert!(chrome.starts_with("{\"displayTimeUnit\""));
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    assert!(chrome.contains("\"ph\":\"X\",\"name\":\"PhaseBegin\""), "phases render as spans");
    let _ = std::fs::remove_file(format!("{base}.jsonl"));
    let _ = std::fs::remove_file(format!("{base}.json"));
}
