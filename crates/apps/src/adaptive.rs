//! **Adaptive** — structured adaptive mesh relaxation (§5.1).
//!
//! A potential field on an `n × n` cell mesh over a box. Each iteration is
//! a red-black sweep: a cell's value relaxes toward the average of its
//! four neighbors. Where the gradient is steep, a cell *subdivides*: its
//! quad-tree grows one level (up to `max_depth`), represented as a
//! `2^d × 2^d` sub-grid slab in the owner's address space (allocated once,
//! addresses stable). Refined cells relax their slab against neighbor
//! boundary values read *from the neighbors' slabs at their own
//! resolution* — so as the mesh refines, new remote reads appear and the
//! communication schedule grows incrementally, while the extra sub-cell
//! work concentrates on the nodes owning the steep region (the load
//! imbalance whose synchronization cost §5.1 shows the predictive
//! protocol reducing).
//!
//! Phase structure per iteration (directive ids as the compiler assigns):
//! red sweep, black sweep, refine. Red and black root values live in
//! *separate* aggregates so a root block is never both read and written in
//! one phase (the layout split a C\*\* programmer gets for free from
//! distinct aggregates; without it every root block would be a conflict
//! block).
//!
//! The update numerics are written once, generic over a [`Mesh`] trait,
//! and instantiated both by the sequential reference and by the DSM
//! version — the parallel run must reproduce the sequential field
//! bit-for-bit (all reads are of the previous phase's data).

use prescient_runtime::{Agg2D, Dist2D, Machine, MachineConfig, NodeCtx};

use crate::AppRun;

/// Adaptive configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Mesh side (the paper uses 128).
    pub n: usize,
    /// Iterations (the paper uses 100).
    pub iters: usize,
    /// Refinement threshold on the neighbor gradient.
    pub tau: f64,
    /// Maximum quad-tree depth (slab side `2^d`).
    pub max_depth: u32,
    /// Flush all communication schedules every `k` iterations (the §3.3
    /// rebuild policy for patterns with deletions); `None` = pure
    /// incremental growth.
    pub flush_every: Option<usize>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { n: 128, iters: 100, tau: 0.5, max_depth: 3, flush_every: None }
    }
}

impl AdaptiveConfig {
    /// Initial potential: a hot Gaussian bump off-center (steep ring →
    /// concentrated refinement → load imbalance).
    pub fn initial(&self, i: usize, j: usize) -> f64 {
        let n = self.n as f64;
        let (ci, cj) = (0.55 * n, 0.45 * n);
        let d2 = (i as f64 - ci).powi(2) + (j as f64 - cj).powi(2);
        let w = 0.12 * n;
        10.0 * (-d2 / (w * w)).exp()
    }

    fn slab_cap(&self) -> usize {
        let s = 1usize << self.max_depth;
        s * s
    }
}

/// The four neighbor sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Up,
    Down,
    Left,
    Right,
}

impl Side {
    const ALL: [Side; 4] = [Side::Up, Side::Down, Side::Left, Side::Right];

    fn neighbor(self, i: usize, j: usize) -> (usize, usize) {
        match self {
            Side::Up => (i - 1, j),
            Side::Down => (i + 1, j),
            Side::Left => (i, j - 1),
            Side::Right => (i, j + 1),
        }
    }
}

/// Storage interface shared by the sequential reference and the DSM
/// version: cell root values, quad-tree depths, and sub-grid slabs
/// (indexed `(a, b)` within an `s × s` grid, `s = 2^depth`).
pub trait Mesh {
    /// Mesh side.
    fn n(&self) -> usize;
    /// Root (effective) value of cell `(i, j)`.
    fn root(&mut self, i: usize, j: usize) -> f64;
    /// Set the root value.
    fn set_root(&mut self, i: usize, j: usize, v: f64);
    /// Quad-tree depth of the cell.
    fn depth(&mut self, i: usize, j: usize) -> u32;
    /// Set the depth.
    fn set_depth(&mut self, i: usize, j: usize, d: u32);
    /// Sub-grid value `(a, b)` of the `s × s` slab of cell `(i, j)`.
    fn slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize) -> f64;
    /// Store a sub-grid value.
    fn set_slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize, v: f64);
    /// Charge arithmetic (no-op for the reference).
    fn work(&mut self, _flops: u64) {}
}

/// Neighbor boundary value for sub-row/column `k` of our `s`-wide edge on
/// `side`: sampled from the neighbor's slab at *its* resolution, or its
/// root when unrefined.
fn boundary_value<M: Mesh>(m: &mut M, i: usize, j: usize, side: Side, k: usize, s: usize) -> f64 {
    let (ni, nj) = side.neighbor(i, j);
    let nd = m.depth(ni, nj);
    if nd == 0 {
        return m.root(ni, nj);
    }
    let sn = 1usize << nd;
    let kn = k * sn / s;
    match side {
        Side::Up => m.slab(ni, nj, sn, sn - 1, kn),
        Side::Down => m.slab(ni, nj, sn, 0, kn),
        Side::Left => m.slab(ni, nj, sn, kn, sn - 1),
        Side::Right => m.slab(ni, nj, sn, kn, 0),
    }
}

/// Relax one interior cell: unrefined cells average their four neighbors'
/// effective values; refined cells run one Jacobi sweep of their slab
/// against neighbor boundaries and update their root to the slab average.
pub fn update_cell<M: Mesh>(m: &mut M, i: usize, j: usize) {
    let d = m.depth(i, j);
    if d == 0 {
        let v = 0.25
            * (boundary_value(m, i, j, Side::Up, 0, 1)
                + boundary_value(m, i, j, Side::Down, 0, 1)
                + boundary_value(m, i, j, Side::Left, 0, 1)
                + boundary_value(m, i, j, Side::Right, 0, 1));
        m.work(4);
        m.set_root(i, j, v);
        return;
    }
    let s = 1usize << d;
    let mut old = vec![0.0f64; s * s];
    for a in 0..s {
        for b in 0..s {
            old[a * s + b] = m.slab(i, j, s, a, b);
        }
    }
    let mut sum = 0.0;
    for a in 0..s {
        for b in 0..s {
            let up =
                if a > 0 { old[(a - 1) * s + b] } else { boundary_value(m, i, j, Side::Up, b, s) };
            let dn = if a + 1 < s {
                old[(a + 1) * s + b]
            } else {
                boundary_value(m, i, j, Side::Down, b, s)
            };
            let le =
                if b > 0 { old[a * s + b - 1] } else { boundary_value(m, i, j, Side::Left, a, s) };
            let ri = if b + 1 < s {
                old[a * s + b + 1]
            } else {
                boundary_value(m, i, j, Side::Right, a, s)
            };
            let v = 0.25 * (up + dn + le + ri);
            m.work(5);
            m.set_slab(i, j, s, a, b, v);
            sum += v;
        }
    }
    m.set_root(i, j, sum / (s * s) as f64);
}

/// Refine one interior cell when its neighbor gradient exceeds `tau`:
/// depth grows by one level and the new slab is seeded by upsampling the
/// old one (or flooding the root value at the first refinement).
pub fn refine_cell<M: Mesh>(m: &mut M, i: usize, j: usize, tau: f64, max_depth: u32) -> bool {
    let d = m.depth(i, j);
    if d >= max_depth {
        return false;
    }
    let r = m.root(i, j);
    let mut grad: f64 = 0.0;
    for side in Side::ALL {
        let (ni, nj) = side.neighbor(i, j);
        grad = grad.max((r - m.root(ni, nj)).abs());
    }
    m.work(8);
    if grad <= tau {
        return false;
    }
    let s_old = 1usize << d;
    let s_new = s_old * 2;
    let old: Vec<f64> = if d == 0 {
        vec![r]
    } else {
        let mut v = vec![0.0; s_old * s_old];
        for a in 0..s_old {
            for b in 0..s_old {
                v[a * s_old + b] = m.slab(i, j, s_old, a, b);
            }
        }
        v
    };
    m.set_depth(i, j, d + 1);
    for a in 0..s_new {
        for b in 0..s_new {
            let v = if d == 0 { r } else { old[(a / 2) * s_old + b / 2] };
            m.set_slab(i, j, s_new, a, b, v);
        }
    }
    true
}

// ---------------------------------------------------------------------
// Sequential reference.
// ---------------------------------------------------------------------

/// The whole mesh state in plain vectors.
pub struct SeqMesh {
    /// Mesh side.
    pub n: usize,
    /// Root values, row-major.
    pub roots: Vec<f64>,
    /// Depths, row-major.
    pub depths: Vec<u32>,
    /// Slabs (capacity for `max_depth`), row-major per cell.
    pub slabs: Vec<Vec<f64>>,
}

impl SeqMesh {
    /// Initialize from a config.
    pub fn new(cfg: &AdaptiveConfig) -> SeqMesh {
        let n = cfg.n;
        SeqMesh {
            n,
            roots: (0..n * n).map(|k| cfg.initial(k / n, k % n)).collect(),
            depths: vec![0; n * n],
            slabs: vec![Vec::new(); n * n],
        }
    }
}

impl Mesh for SeqMesh {
    fn n(&self) -> usize {
        self.n
    }
    fn root(&mut self, i: usize, j: usize) -> f64 {
        self.roots[i * self.n + j]
    }
    fn set_root(&mut self, i: usize, j: usize, v: f64) {
        self.roots[i * self.n + j] = v;
    }
    fn depth(&mut self, i: usize, j: usize) -> u32 {
        self.depths[i * self.n + j]
    }
    fn set_depth(&mut self, i: usize, j: usize, d: u32) {
        self.depths[i * self.n + j] = d;
    }
    fn slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize) -> f64 {
        self.slabs[i * self.n + j][a * s + b]
    }
    fn set_slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize, v: f64) {
        let cell = &mut self.slabs[i * self.n + j];
        if cell.len() < s * s {
            cell.resize(s * s, 0.0);
        }
        cell[a * s + b] = v;
    }
}

/// One full iteration: red sweep, black sweep, refine (interior cells
/// only; the box edge is a fixed Dirichlet boundary).
pub fn seq_iteration(m: &mut SeqMesh, cfg: &AdaptiveConfig) {
    let n = m.n;
    for color in 0..2usize {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                if (i + j) % 2 == color {
                    update_cell(m, i, j);
                }
            }
        }
    }
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            refine_cell(m, i, j, cfg.tau, cfg.max_depth);
        }
    }
}

/// Run the sequential reference to completion; returns the mesh.
pub fn seq_adaptive(cfg: &AdaptiveConfig) -> SeqMesh {
    let mut m = SeqMesh::new(cfg);
    for _ in 0..cfg.iters {
        seq_iteration(&mut m, cfg);
    }
    m
}

/// Field checksum (roots weighted by position, plus total refinement).
pub fn mesh_checksum(roots: &[f64], depths: &[u32]) -> f64 {
    let field: f64 = roots.iter().enumerate().map(|(k, v)| (1 + k % 5) as f64 * v).sum();
    let refinement: f64 = depths.iter().map(|&d| d as f64).sum();
    field + 1e-3 * refinement
}

// ---------------------------------------------------------------------
// DSM version.
// ---------------------------------------------------------------------

const PHASE_RED: u32 = 1;
const PHASE_BLACK: u32 = 2;
const PHASE_REFINE: u32 = 3;

struct AdaptiveAggs {
    /// Red roots: cell (i, j) with (i+j) even, at column j/2.
    red: Agg2D<f64>,
    /// Black roots.
    black: Agg2D<f64>,
    depth: Agg2D<i64>,
    /// Slab storage: row i, columns `j*cap .. (j+1)*cap`.
    slabs: Agg2D<f64>,
    cap: usize,
}

impl AdaptiveAggs {
    fn new(machine: &Machine, cfg: &AdaptiveConfig) -> AdaptiveAggs {
        let n = cfg.n;
        let cap = cfg.slab_cap();
        AdaptiveAggs {
            red: Agg2D::new(machine, n, n.div_ceil(2), Dist2D::RowBlock),
            black: Agg2D::new(machine, n, n.div_ceil(2), Dist2D::RowBlock),
            depth: Agg2D::new(machine, n, n, Dist2D::RowBlock),
            slabs: Agg2D::new(machine, n, n * cap, Dist2D::RowBlock),
            cap,
        }
    }
}

struct DsmMesh<'a, 'c> {
    aggs: &'a AdaptiveAggs,
    ctx: &'c mut NodeCtx,
    n: usize,
}

impl Mesh for DsmMesh<'_, '_> {
    fn n(&self) -> usize {
        self.n
    }
    fn root(&mut self, i: usize, j: usize) -> f64 {
        let agg = if (i + j).is_multiple_of(2) { &self.aggs.red } else { &self.aggs.black };
        self.ctx.read(agg.addr(i, j / 2))
    }
    fn set_root(&mut self, i: usize, j: usize, v: f64) {
        let agg = if (i + j).is_multiple_of(2) { &self.aggs.red } else { &self.aggs.black };
        self.ctx.write(agg.addr(i, j / 2), v);
    }
    fn depth(&mut self, i: usize, j: usize) -> u32 {
        self.ctx.read::<i64>(self.aggs.depth.addr(i, j)) as u32
    }
    fn set_depth(&mut self, i: usize, j: usize, d: u32) {
        self.ctx.write(self.aggs.depth.addr(i, j), d as i64);
    }
    fn slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize) -> f64 {
        self.ctx.read(self.aggs.slabs.addr(i, j * self.aggs.cap + a * s + b))
    }
    fn set_slab(&mut self, i: usize, j: usize, s: usize, a: usize, b: usize, v: f64) {
        self.ctx.write(self.aggs.slabs.addr(i, j * self.aggs.cap + a * s + b), v);
    }
    fn work(&mut self, flops: u64) {
        self.ctx.work(flops);
    }
}

/// Run the data-parallel Adaptive. Works under both machines. Returns the
/// run plus the final `(roots, depths)` for validation.
pub fn run_adaptive_full(
    mcfg: MachineConfig,
    cfg: &AdaptiveConfig,
) -> (AppRun, Vec<f64>, Vec<u32>) {
    let n = cfg.n;
    let iters = cfg.iters;
    let tau = cfg.tau;
    let max_depth = cfg.max_depth;

    let mut machine = Machine::new(mcfg);
    let aggs = AdaptiveAggs::new(&machine, cfg);

    // Initialize roots and depths (not measured).
    machine.run(|ctx: &mut NodeCtx| {
        let rows = aggs.depth.my_rows(ctx.me());
        let mut m = DsmMesh { aggs: &aggs, ctx, n };
        for i in rows {
            for j in 0..n {
                m.set_root(i, j, cfg.initial(i, j));
                m.set_depth(i, j, 0);
            }
        }
        ctx.barrier();
    });

    let (_, report) = machine.run(|ctx: &mut NodeCtx| {
        let rows = aggs.depth.my_rows(ctx.me());
        let interior = |i: usize| -> std::ops::Range<usize> {
            if i == 0 || i == n - 1 {
                0..0
            } else {
                1..n - 1
            }
        };
        for iter in 0..iters {
            if let Some(k) = cfg.flush_every {
                if iter > 0 && iter % k == 0 {
                    for phase in [PHASE_RED, PHASE_BLACK, PHASE_REFINE] {
                        ctx.flush_schedule(phase);
                    }
                }
            }
            // Every phase body is idempotent (cell updates read the
            // previous phase's data, and `DsmMesh` holds no cross-phase
            // private state), so the recovery wrapper needs no replay
            // state beyond the shared-memory rollback itself.
            for (phase, color) in [(PHASE_RED, 0usize), (PHASE_BLACK, 1usize)] {
                ctx.phase(phase, &mut (), |ctx, _| {
                    for i in rows.clone() {
                        for j in interior(i) {
                            if (i + j) % 2 == color {
                                let mut m = DsmMesh { aggs: &aggs, ctx, n };
                                update_cell(&mut m, i, j);
                            }
                        }
                    }
                });
            }
            ctx.phase(PHASE_REFINE, &mut (), |ctx, _| {
                for i in rows.clone() {
                    for j in interior(i) {
                        let mut m = DsmMesh { aggs: &aggs, ctx, n };
                        refine_cell(&mut m, i, j, tau, max_depth);
                    }
                }
            });
        }
    });

    // Gather for validation.
    let (gathered, _) = machine.run(|ctx: &mut NodeCtx| {
        let mut out = (Vec::new(), Vec::new());
        if ctx.me() == 0 {
            let mut m = DsmMesh { aggs: &aggs, ctx, n };
            for i in 0..n {
                for j in 0..n {
                    out.0.push(m.root(i, j));
                    out.1.push(m.depth(i, j));
                }
            }
        }
        ctx.barrier();
        out
    });
    let (roots, depths) = gathered.into_iter().next().expect("node 0");
    let checksum = mesh_checksum(&roots, &depths);
    (AppRun { report, checksum }, roots, depths)
}

/// Run Adaptive and return just the [`AppRun`].
pub fn run_adaptive(mcfg: MachineConfig, cfg: &AdaptiveConfig) -> AppRun {
    run_adaptive_full(mcfg, cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AdaptiveConfig {
        AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None }
    }

    #[test]
    fn initial_bump_peaks_inside() {
        let cfg = AdaptiveConfig::default();
        let peak = cfg.initial(70, 58);
        assert!(peak > 8.0);
        assert!(cfg.initial(0, 0) < 0.1);
    }

    #[test]
    fn refinement_happens_and_is_bounded() {
        let cfg = small();
        let m = seq_adaptive(&cfg);
        let refined = m.depths.iter().filter(|&&d| d > 0).count();
        assert!(refined > 0, "steep bump must trigger refinement");
        assert!(m.depths.iter().all(|&d| d <= cfg.max_depth));
        // Boundary never refines.
        let n = cfg.n;
        for k in 0..n {
            assert_eq!(m.depths[k], 0);
            assert_eq!(m.depths[(n - 1) * n + k], 0);
        }
    }

    #[test]
    fn field_relaxes_toward_smoothness() {
        let cfg = AdaptiveConfig { n: 12, iters: 30, tau: 1e9, max_depth: 0, flush_every: None };
        let m = seq_adaptive(&cfg);
        // With a fixed zero boundary and many sweeps, the interior decays.
        let max_interior = (1..11)
            .flat_map(|i| (1..11).map(move |j| (i, j)))
            .map(|(i, j)| m.roots[i * 12 + j].abs())
            .fold(0.0f64, f64::max);
        assert!(max_interior < 10.0 * 0.9, "field must decay: {max_interior}");
    }

    #[test]
    fn upsample_preserves_average() {
        let cfg = small();
        let mut m = SeqMesh::new(&cfg);
        // Force one refinement of a steep cell and check slab seeding.
        let (i, j) = (6, 5);
        let r = m.root(i, j);
        assert!(refine_cell(&mut m, i, j, 0.0, 2) || r == 0.0);
        if m.depth(i, j) == 1 {
            for a in 0..2 {
                for b in 0..2 {
                    assert_eq!(m.slab(i, j, 2, a, b), r);
                }
            }
        }
    }

    #[test]
    fn update_unrefined_averages_neighbors() {
        let cfg = small();
        let mut m = SeqMesh::new(&cfg);
        let (i, j) = (5, 5);
        let expect =
            0.25 * (m.root(i - 1, j) + m.root(i + 1, j) + m.root(i, j - 1) + m.root(i, j + 1));
        update_cell(&mut m, i, j);
        assert_eq!(m.root(i, j), expect);
    }

    #[test]
    fn checksum_sensitive_to_depths() {
        let a = mesh_checksum(&[1.0, 2.0], &[0, 0]);
        let b = mesh_checksum(&[1.0, 2.0], &[0, 1]);
        assert_ne!(a, b);
    }
}
