// Index-based loops over small fixed-size vectors are the clearest idiom
// for the numeric kernels here.
#![allow(clippy::needless_range_loop)]

//! # prescient-apps
//!
//! The paper's three evaluation applications (Table 1), their sequential
//! references, and the two external baselines:
//!
//! * [`adaptive`] — *Adaptive*: structured adaptive mesh relaxation
//!   computing electric potentials in a box; cells subdivide (quad-tree
//!   refinement) where the gradient is steep, so communication grows
//!   incrementally and load is imbalanced (paper: 128×128 mesh, 100
//!   iterations);
//! * [`barnes`] — *Barnes*: gravitational N-body simulation over an
//!   oct-tree, rebuilt every time step, with unstructured tree reads in
//!   the force phase (paper: 16384 bodies, 3 iterations);
//! * [`water`] — *Water*: molecular dynamics with a half-shell spherical
//!   cutoff; a molecule's position updated in one phase is read by n/2
//!   molecules in the next — the canonical static producer–consumer
//!   pattern (paper: 512 molecules, 20 iterations);
//! * [`barnes::run_barnes_spmd`] — the hand-optimized SPMD Barnes baseline
//!   modeled after the application-specific write-update protocols of
//!   Falsafi et al. (Figure 6's fifth bar);
//! * [`water::run_splash_water`] — the Splash-style Water baseline
//!   (transparent shared memory, scattered force writes, no custom
//!   protocol — Figure 7's third bar);
//! * [`barnes::run_barnes_commute`] — Barnes with the tree build run under
//!   the `commute` directive (privatize-and-merge; the conflict phase the
//!   predictive protocol leaves without action).
//!
//! Every application runs unmodified under both the unoptimized (plain
//! Stache) and optimized (predictive) machines — the `phase_begin` /
//! `phase_end` directives are no-ops under Stache — and validates against
//! its sequential reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod barnes;
pub mod water;

use prescient_runtime::RunReport;

/// Outcome of one application run.
pub struct AppRun {
    /// The measured run (main iterations only; setup is excluded).
    pub report: RunReport,
    /// An application-defined checksum of the final state, for
    /// cross-version comparisons.
    pub checksum: f64,
}

/// Relative error helper for validations.
pub fn rel_err(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(1e-30);
    (a - b).abs() / denom
}
