//! **Barnes** — gravitational N-body simulation over an oct-tree (§5.2;
//! SPLASH's Barnes-Hut).
//!
//! Bodies live in the unit cube. Space is cut by a fixed 4×4×4 region grid
//! (64 regions, assigned to nodes cyclically); each region owner builds an
//! oct-tree for its region in a node-local *arena* whose addresses are
//! reused every time step, so the communication pattern is repetitive with
//! small incremental changes as bodies drift between regions — exactly the
//! adaptive behavior of §1. Each time step runs the paper's four phases
//! (Figure 4):
//!
//! 1. **build** — region owners scan all body positions (unstructured
//!    remote reads) and insert their region's bodies into their trees
//!    (home writes, which invalidate copies cached by the previous force
//!    phase);
//! 2. **center-of-mass** — an upward pass over the owner's own trees
//!    (home writes of the mass/COM fields);
//! 3. **forces** — every body traverses all 64 region trees with the
//!    θ-opening criterion (unstructured reads of remote tree cells and of
//!    leaf bodies' positions); accelerations stay in private memory;
//! 4. **advance** — owners integrate and write new positions (owner
//!    writes).
//!
//! [`run_barnes_spmd`] models the paper's hand-optimized SPMD baseline
//! (Falsafi et al.'s application-specific write-update protocol): the
//! known broadcast of positions is installed as a *manual* communication
//! schedule and executed as update pushes, with no recording overhead.
//!
//! [`run_barnes_commute`] runs the build phase under the `commute`
//! directive that the `cstar` commutativity analysis suggests (lint W007):
//! tree insertion is an associative-commutative aggregate update, so each
//! node privatizes its own bodies' contributions into `(region, body,
//! position)` delta records and the records are merged in bulk at the
//! phase barrier ([`NodeCtx::merge_exchange`]) — the Stache bulk install.
//! Region owners replay their regions' insertions from the merged set in
//! the serialized build's order, and the full set doubles as the step's
//! read-only position snapshot for the summary and force phases. No node
//! ever read-shares a position block, which eliminates both the owners'
//! demand scans of all `n` positions *and* the advance phase's
//! invalidation of the scattered copies — the trees and the final
//! checksum stay bit-identical to the demand-driven build's.

use std::collections::HashMap;

use prescient_core::manual::ManualEntry;
use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};
use prescient_tempest::{GAddr, NodeId, NodeSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::AppRun;

/// Region grid: 4 per axis → 64 regions (supports up to 64 nodes).
pub const GRID: usize = 4;
/// Total regions.
pub const REGIONS: usize = GRID * GRID * GRID;

/// Barnes configuration.
#[derive(Debug, Clone, Copy)]
pub struct BarnesConfig {
    /// Number of bodies (the paper uses 16384).
    pub n: usize,
    /// Time steps (the paper uses 3).
    pub steps: usize,
    /// Opening criterion θ.
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BarnesConfig {
    fn default() -> Self {
        BarnesConfig { n: 16384, steps: 3, theta: 0.7, dt: 1e-3, seed: 0xbab1e5 }
    }
}

/// Deterministic initial bodies: two clustered blobs plus a uniform
/// background (clustering makes the tree uneven, as in real N-body data).
pub fn initial_bodies(cfg: &BarnesConfig) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pos = Vec::with_capacity(cfg.n);
    let mut mass = Vec::with_capacity(cfg.n);
    let blob = |rng: &mut SmallRng, c: [f64; 3], r: f64| {
        let mut p = [0.0; 3];
        for (k, pk) in p.iter_mut().enumerate() {
            *pk = (c[k] + rng.gen_range(-r..r)).rem_euclid(1.0);
        }
        p
    };
    for i in 0..cfg.n {
        let p = match i % 4 {
            0 => blob(&mut rng, [0.3, 0.3, 0.3], 0.08),
            1 => blob(&mut rng, [0.7, 0.6, 0.4], 0.05),
            _ => [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)],
        };
        pos.push(p);
        mass.push(1.0 / cfg.n as f64);
    }
    (pos, mass)
}

/// Region index of a position.
#[inline]
pub fn region_of(p: &[f64; 3]) -> usize {
    let g = GRID as f64;
    let ix = ((p[0] * g) as usize).min(GRID - 1);
    let iy = ((p[1] * g) as usize).min(GRID - 1);
    let iz = ((p[2] * g) as usize).min(GRID - 1);
    ix + GRID * (iy + GRID * iz)
}

/// Lower corner of a region's box.
#[inline]
fn region_corner(r: usize) -> [f64; 3] {
    let g = GRID as f64;
    [(r % GRID) as f64 / g, ((r / GRID) % GRID) as f64 / g, (r / (GRID * GRID)) as f64 / g]
}

const SOFTENING2: f64 = 1e-6;
const MAX_DEPTH: usize = 24;

// ---------------------------------------------------------------------
// Sequential reference: the same region-rooted Barnes-Hut, on plain Vecs.
// ---------------------------------------------------------------------

/// A tree cell in the sequential reference.
#[derive(Clone)]
struct SeqCell {
    children: [SeqChild; 8],
    mass: f64,
    com: [f64; 3],
}

#[derive(Clone, Copy, PartialEq)]
enum SeqChild {
    Empty,
    Body(usize),
    Cell(usize),
}

impl Default for SeqCell {
    fn default() -> Self {
        SeqCell { children: [SeqChild::Empty; 8], mass: 0.0, com: [0.0; 3] }
    }
}

/// Octant of `p` within the cell with corner `corner` and size `size`.
#[inline]
fn octant(p: &[f64; 3], corner: &[f64; 3], size: f64) -> (usize, [f64; 3]) {
    let half = size / 2.0;
    let mut idx = 0;
    let mut c = *corner;
    for k in 0..3 {
        if p[k] >= corner[k] + half {
            idx |= 1 << k;
            c[k] += half;
        }
    }
    (idx, c)
}

struct SeqTree {
    cells: Vec<SeqCell>,
    roots: [Option<usize>; REGIONS],
}

fn seq_build(pos: &[[f64; 3]], mass: &[f64]) -> SeqTree {
    let mut t = SeqTree { cells: Vec::new(), roots: [None; REGIONS] };
    let rsize = 1.0 / GRID as f64;
    for b in 0..pos.len() {
        let r = region_of(&pos[b]);
        let root = *t.roots[r].get_or_insert_with(|| {
            t.cells.push(SeqCell::default());
            t.cells.len() - 1
        });
        // Standard BH insertion within the region's box.
        let mut cell = root;
        let mut corner = region_corner(r);
        let mut size = rsize;
        let mut depth = 0;
        loop {
            let (oi, oc) = octant(&pos[b], &corner, size);
            match t.cells[cell].children[oi] {
                SeqChild::Empty => {
                    t.cells[cell].children[oi] = SeqChild::Body(b);
                    break;
                }
                SeqChild::Cell(c) => {
                    cell = c;
                    corner = oc;
                    size /= 2.0;
                    depth += 1;
                }
                SeqChild::Body(other) => {
                    if depth >= MAX_DEPTH {
                        // Coincident bodies: fold into the cell's summary
                        // only (documented approximation).
                        break;
                    }
                    t.cells.push(SeqCell::default());
                    let nc = t.cells.len() - 1;
                    t.cells[cell].children[oi] = SeqChild::Cell(nc);
                    let (ooi, _) = octant(&pos[other], &oc, size / 2.0);
                    t.cells[nc].children[ooi] = SeqChild::Body(other);
                    cell = nc;
                    corner = oc;
                    size /= 2.0;
                    depth += 1;
                }
            }
        }
    }
    // COM pass.
    fn com(t: &mut SeqTree, cell: usize, pos: &[[f64; 3]], mass: &[f64]) -> (f64, [f64; 3]) {
        let children = t.cells[cell].children;
        let mut m = 0.0;
        let mut c = [0.0; 3];
        for ch in children {
            let (cm, cc) = match ch {
                SeqChild::Empty => continue,
                SeqChild::Body(b) => (mass[b], pos[b]),
                SeqChild::Cell(x) => com(t, x, pos, mass),
            };
            m += cm;
            for k in 0..3 {
                c[k] += cm * cc[k];
            }
        }
        if m > 0.0 {
            for ck in c.iter_mut() {
                *ck /= m;
            }
        }
        t.cells[cell].mass = m;
        t.cells[cell].com = c;
        (m, c)
    }
    for r in 0..REGIONS {
        if let Some(root) = t.roots[r] {
            com(&mut t, root, pos, mass);
        }
    }
    t
}

fn accumulate(acc: &mut [f64; 3], p: &[f64; 3], q: &[f64; 3], m: f64) {
    let dx = q[0] - p[0];
    let dy = q[1] - p[1];
    let dz = q[2] - p[2];
    let r2 = dx * dx + dy * dy + dz * dz + SOFTENING2;
    let inv_r = 1.0 / r2.sqrt();
    let f = m * inv_r * inv_r * inv_r;
    acc[0] += f * dx;
    acc[1] += f * dy;
    acc[2] += f * dz;
}

fn seq_force(t: &SeqTree, b: usize, pos: &[[f64; 3]], mass: &[f64], theta: f64) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    let rsize = 1.0 / GRID as f64;
    #[allow(clippy::too_many_arguments)]
    fn walk(
        t: &SeqTree,
        cell: usize,
        size: f64,
        b: usize,
        pos: &[[f64; 3]],
        mass: &[f64],
        theta: f64,
        acc: &mut [f64; 3],
    ) {
        let c = &t.cells[cell];
        let p = &pos[b];
        let dx = c.com[0] - p[0];
        let dy = c.com[1] - p[1];
        let dz = c.com[2] - p[2];
        let d2 = dx * dx + dy * dy + dz * dz;
        if c.mass > 0.0 && size * size < theta * theta * d2 {
            accumulate(acc, p, &c.com, c.mass);
            return;
        }
        for ch in c.children {
            match ch {
                SeqChild::Empty => {}
                SeqChild::Body(j) => {
                    if j != b {
                        accumulate(acc, p, &pos[j], mass[j]);
                    }
                }
                SeqChild::Cell(x) => {
                    walk(t, x, size / 2.0, b, pos, mass, theta, acc);
                }
            }
        }
    }
    for r in 0..REGIONS {
        if let Some(root) = t.roots[r] {
            walk(t, root, rsize, b, pos, mass, theta, &mut acc);
        }
    }
    acc
}

/// The sequential reference: returns final positions.
pub fn seq_barnes(cfg: &BarnesConfig) -> Vec<[f64; 3]> {
    let (mut pos, mass) = initial_bodies(cfg);
    let mut vel = vec![[0.0f64; 3]; cfg.n];
    for _ in 0..cfg.steps {
        let t = seq_build(&pos, &mass);
        let accs: Vec<[f64; 3]> =
            (0..cfg.n).map(|b| seq_force(&t, b, &pos, &mass, cfg.theta)).collect();
        for b in 0..cfg.n {
            for k in 0..3 {
                vel[b][k] += accs[b][k] * cfg.dt;
                pos[b][k] = (pos[b][k] + vel[b][k] * cfg.dt).rem_euclid(1.0);
            }
        }
    }
    pos
}

// ---------------------------------------------------------------------
// DSM version.
// ---------------------------------------------------------------------

/// Cell layout in the shared arena, in 8-byte words:
/// `[0..8)`  children (u64-encoded: 0 empty, odd = body*2+1, even = cell
/// address), `[8]` mass (f64), `[9..12)` COM (f64), `[12]` pad.
const CELL_WORDS: u64 = 12;
const CELL_BYTES: u64 = CELL_WORDS * 8;

#[inline]
fn child_encode_body(b: usize) -> u64 {
    (b as u64) << 1 | 1
}

#[inline]
fn child_encode_cell(a: GAddr) -> u64 {
    debug_assert_eq!(a.0 & 1, 0);
    a.0
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Child {
    Empty,
    Body(usize),
    Cell(GAddr),
}

#[inline]
fn child_decode(w: u64) -> Child {
    if w == 0 {
        Child::Empty
    } else if w & 1 == 1 {
        Child::Body((w >> 1) as usize)
    } else {
        Child::Cell(GAddr(w))
    }
}

/// Phase ids as the compiler assigns for the four-phase main loop
/// (Figure 4).
const PHASE_BUILD: u32 = 1;
const PHASE_COM: u32 = 2;
const PHASE_FORCE: u32 = 3;
const PHASE_ADVANCE: u32 = 4;

struct BarnesShared {
    px: Agg1D<f64>,
    py: Agg1D<f64>,
    pz: Agg1D<f64>,
    mass: Agg1D<f64>,
    /// Root cell address per region (0 = region empty this step).
    roots: Agg1D<u64>,
    /// Per-node arena base and capacity in cells.
    arena_base: Vec<GAddr>,
    arena_cells: u64,
}

/// Count the cells one region's tree allocates for the given bodies — the
/// same insertion walk as the build phase, on private memory. Used to size
/// the per-node arenas: the clustered initial conditions pack thousands of
/// bodies into a single region, so the uniform `4n/P` estimate is wrong at
/// paper scale (n=16384 exhausts it and the build phase panics).
fn count_region_cells(pos: &[[f64; 3]], r: usize) -> u64 {
    let rsize = 1.0 / GRID as f64;
    let corner0 = region_corner(r);
    // Children words per cell: 0 empty, odd = body, even nonzero = cell
    // index * 2 + 2 (a private re-encoding of the shared-arena scheme).
    let mut cells: Vec<[u64; 8]> = Vec::new();
    let mut root: Option<usize> = None;
    for (b, p) in pos.iter().enumerate() {
        if region_of(p) != r {
            continue;
        }
        let root_idx = match root {
            Some(i) => i,
            None => {
                cells.push([0; 8]);
                root = Some(cells.len() - 1);
                cells.len() - 1
            }
        };
        let mut cell = root_idx;
        let mut corner = corner0;
        let mut size = rsize;
        let mut depth = 0;
        loop {
            let (oi, oc) = octant(p, &corner, size);
            let w = cells[cell][oi];
            if w == 0 {
                cells[cell][oi] = (b as u64) << 1 | 1;
                break;
            } else if w & 1 == 0 {
                cell = (w / 2 - 1) as usize;
                corner = oc;
                size /= 2.0;
                depth += 1;
            } else {
                if depth >= MAX_DEPTH {
                    break;
                }
                let other = (w >> 1) as usize;
                cells.push([0; 8]);
                let nc = cells.len() - 1;
                cells[cell][oi] = (nc as u64) * 2 + 2;
                let (ooi, _) = octant(&pos[other], &oc, size / 2.0);
                cells[nc][ooi] = (other as u64) << 1 | 1;
                cell = nc;
                corner = oc;
                size /= 2.0;
                depth += 1;
            }
        }
    }
    cells.len() as u64
}

fn setup(machine: &Machine, cfg: &BarnesConfig, init_pos: &[[f64; 3]]) -> BarnesShared {
    let n = cfg.n;
    let nodes = machine.nodes();
    // Arena capacity: 4n/P cells per node covers near-uniform data (a body
    // insertion allocates amortized ~1 cell). Clustered data can blow past
    // that on the node owning the dense region, so take the larger of the
    // uniform estimate and the measured per-node demand for the initial
    // bodies (plus 25% + 16 slack for drift between regions). The uniform
    // value is kept whenever it suffices so that the address layout — and
    // with it the recorded traffic counters — is unchanged at the scales
    // that already fit.
    let uniform = (4 * n / nodes + 64) as u64;
    let mut per_node = vec![0u64; nodes];
    for r in 0..REGIONS {
        per_node[r % nodes] += count_region_cells(init_pos, r);
    }
    let needed = per_node.iter().copied().max().unwrap_or(0);
    let arena_cells = if needed <= uniform { uniform } else { needed + needed / 4 + 16 };
    let arena_base =
        (0..nodes).map(|p| machine.alloc_on(p as u16, arena_cells * CELL_BYTES, 8)).collect();
    BarnesShared {
        px: Agg1D::new(machine, n, Dist1D::Block),
        py: Agg1D::new(machine, n, Dist1D::Block),
        pz: Agg1D::new(machine, n, Dist1D::Block),
        mass: Agg1D::new(machine, n, Dist1D::Block),
        roots: Agg1D::new(machine, REGIONS, Dist1D::Cyclic),
        arena_base,
        arena_cells,
    }
}

impl BarnesShared {
    fn read_pos(&self, ctx: &mut NodeCtx, b: usize) -> [f64; 3] {
        [
            ctx.read::<f64>(self.px.addr(b)),
            ctx.read::<f64>(self.py.addr(b)),
            ctx.read::<f64>(self.pz.addr(b)),
        ]
    }

    fn cell_child_addr(&self, cell: GAddr, oi: usize) -> GAddr {
        cell.add(oi as u64 * 8)
    }

    fn cell_mass_addr(&self, cell: GAddr) -> GAddr {
        cell.add(8 * 8)
    }

    fn cell_com_addr(&self, cell: GAddr, k: usize) -> GAddr {
        cell.add((9 + k as u64) * 8)
    }
}

/// One node's arena cursor for a time step: cells are reused in place each
/// step so that tree addresses — and therefore the communication pattern —
/// stay stable across iterations.
struct Arena {
    base: GAddr,
    cells: u64,
    next: u64,
}

impl Arena {
    fn fresh_cell(&mut self, ctx: &mut NodeCtx, sh: &BarnesShared) -> GAddr {
        assert!(self.next < self.cells, "tree arena exhausted");
        let a = GAddr(self.base.0 + self.next * CELL_BYTES);
        self.next += 1;
        // Clear the children; summary words are overwritten by the COM
        // pass.
        for oi in 0..8 {
            ctx.write(sh.cell_child_addr(a, oi), 0u64);
        }
        a
    }
}

/// How the build phase communicates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BuildMode {
    /// Demand-driven reads of every position — plain Stache, or predictive
    /// with the conflict blocks left alone (the paper's "no action").
    Shared,
    /// The hand-written SPMD update schedule.
    SpmdManual,
    /// Privatize-and-merge under the `commute` directive.
    Commute,
}

/// Run the data-parallel Barnes. Works under both machines.
pub fn run_barnes(mcfg: MachineConfig, cfg: &BarnesConfig) -> AppRun {
    let (pos, report) = barnes_driver(mcfg, cfg, BuildMode::Shared);
    AppRun { report, checksum: crate::water::position_checksum(&pos) }
}

/// Final positions (validation helper).
pub fn barnes_final_positions(mcfg: MachineConfig, cfg: &BarnesConfig) -> Vec<[f64; 3]> {
    barnes_driver(mcfg, cfg, BuildMode::Shared).0
}

/// The hand-optimized SPMD baseline: a write-update custom protocol,
/// modeled as hand-installed (manual) communication schedules that
/// broadcast position blocks to all nodes before each build phase and push
/// ownership back for the advance phase — with recording disabled (no
/// schedule-building overhead). Requires a predictive-protocol machine.
pub fn run_barnes_spmd(mcfg: MachineConfig, cfg: &BarnesConfig) -> AppRun {
    assert!(mcfg.protocol.is_predictive(), "the SPMD baseline uses the update machinery");
    let (pos, report) = barnes_driver(mcfg, cfg, BuildMode::SpmdManual);
    AppRun { report, checksum: crate::water::position_checksum(&pos) }
}

/// Barnes with the tree build run under the `commute` directive: the
/// commutativity analysis proves the insertion loop mergeable (W007), so
/// every node contributes `(region, body, position)` records from its own
/// bodies and the merged set is installed everywhere at the phase
/// barrier — region owners replay their insertions from it and the
/// consuming phases read positions from the snapshot instead of the DSM.
/// Requires a commutative machine ([`MachineConfig::commutative`]).
pub fn run_barnes_commute(mcfg: MachineConfig, cfg: &BarnesConfig) -> AppRun {
    assert!(mcfg.protocol.is_commutative(), "the commutative build uses merge_exchange");
    let (pos, report) = barnes_driver(mcfg, cfg, BuildMode::Commute);
    AppRun { report, checksum: crate::water::position_checksum(&pos) }
}

fn barnes_driver(
    mcfg: MachineConfig,
    cfg: &BarnesConfig,
    mode: BuildMode,
) -> (Vec<[f64; 3]>, prescient_runtime::RunReport) {
    let n = cfg.n;
    let steps = cfg.steps;
    let theta = cfg.theta;
    let dt = cfg.dt;
    let (init_pos, init_mass) = initial_bodies(cfg);

    let mut machine = Machine::new(mcfg);
    let sh = setup(&machine, cfg, &init_pos);
    let nodes = machine.nodes();

    // Initialization (not measured).
    machine.run(|ctx: &mut NodeCtx| {
        for b in sh.px.my_range(ctx.me()) {
            ctx.write(sh.px.addr(b), init_pos[b][0]);
            ctx.write(sh.py.addr(b), init_pos[b][1]);
            ctx.write(sh.pz.addr(b), init_pos[b][2]);
            ctx.write(sh.mass.addr(b), init_mass[b]);
        }
        ctx.barrier();
    });

    // SPMD baseline: install the hand-written update schedules once.
    if mode == BuildMode::SpmdManual {
        let bs = machine.config().block_size;
        for p in 0..nodes {
            let pred = machine.predictive(p as u16).expect("predictive machine");
            let everyone = NodeSet::all(nodes);
            let mut entries = Vec::new();
            for agg in [&sh.px, &sh.py, &sh.pz] {
                let range = agg.my_range(p as u16);
                if range.is_empty() {
                    continue;
                }
                let first = agg.addr(range.start).block(bs);
                let last = agg.addr(range.end - 1).block(bs);
                let mut blk = first;
                loop {
                    // Broadcast copies to every reader before the build
                    // phase (the write-update push)...
                    entries.push((blk, ManualEntry::Readers(everyone.without(p as u16))));
                    if blk == last {
                        break;
                    }
                    blk = blk.next();
                }
            }
            pred.install_manual(PHASE_BUILD, entries.clone());
            // ...and return exclusive ownership before the advance phase.
            let writeback: Vec<_> =
                entries.iter().map(|(b, _)| (*b, ManualEntry::Writer(p as u16))).collect();
            pred.install_manual(PHASE_ADVANCE, writeback);
        }
    }

    let (_, report) = machine.run(|ctx: &mut NodeCtx| {
        let me = ctx.me();
        let my_bodies = sh.px.my_range(me);
        let my_regions: Vec<usize> = (0..REGIONS).filter(|r| r % nodes == me as usize).collect();
        let mut vel = vec![[0.0f64; 3]; n];
        let mut arena = Arena { base: sh.arena_base[me as usize], cells: sh.arena_cells, next: 0 };

        // Cross-phase private state (`my_roots`, `merged_pos`, `accs`) is
        // fully rebuilt by its producing phase, and the arena cursor
        // resets at build entry — so every phase body below is
        // replay-safe; only `vel` accumulates and must ride along as the
        // advance phase's state.
        let mut my_roots: Vec<(usize, GAddr)> = Vec::new();
        // Commute mode only: the step's merged position snapshot.
        let mut merged_pos: HashMap<usize, [f64; 3]> = HashMap::new();
        for _step in 0..steps {
            // ---- Phase 1: build -------------------------------------
            match mode {
                BuildMode::SpmdManual => {
                    ctx.presend_only(PHASE_BUILD);
                    my_roots = build_phase(ctx, &sh, &my_regions, &mut arena, n);
                    ctx.barrier();
                }
                BuildMode::Commute => {
                    let mut st = (std::mem::take(&mut my_roots), std::mem::take(&mut merged_pos));
                    ctx.phase(PHASE_BUILD, &mut st, |ctx, st| {
                        (st.0, st.1) = build_phase_commute(
                            ctx,
                            &sh,
                            my_bodies.clone(),
                            &my_regions,
                            &mut arena,
                            nodes,
                            n,
                        );
                    });
                    my_roots = st.0;
                    merged_pos = st.1;
                }
                BuildMode::Shared => {
                    ctx.phase(PHASE_BUILD, &mut my_roots, |ctx, roots| {
                        *roots = build_phase(ctx, &sh, &my_regions, &mut arena, n);
                    });
                }
            }
            let pos_snapshot = (mode == BuildMode::Commute).then_some(&merged_pos);

            // ---- Phase 2: center of mass (own trees) ----------------
            if mode == BuildMode::SpmdManual {
                for &(_r, root) in &my_roots {
                    com_pass(ctx, &sh, root, None);
                }
                ctx.barrier();
            } else {
                ctx.phase(PHASE_COM, &mut (), |ctx, _| {
                    for &(_r, root) in &my_roots {
                        com_pass(ctx, &sh, root, pos_snapshot);
                    }
                });
            }

            // ---- Phase 3: forces ------------------------------------
            let mut accs = vec![[0.0f64; 3]; my_bodies.len()];
            if mode == BuildMode::SpmdManual {
                force_phase(ctx, &sh, my_bodies.clone(), theta, &mut accs, None);
                ctx.barrier();
            } else {
                ctx.phase(PHASE_FORCE, &mut accs, |ctx, accs| {
                    force_phase(ctx, &sh, my_bodies.clone(), theta, accs, pos_snapshot);
                });
            }

            // ---- Phase 4: advance -----------------------------------
            if mode == BuildMode::SpmdManual {
                ctx.presend_only(PHASE_ADVANCE);
                advance_phase(ctx, &sh, my_bodies.clone(), &accs, dt, &mut vel);
                ctx.barrier();
            } else {
                ctx.phase(PHASE_ADVANCE, &mut vel, |ctx, vel| {
                    advance_phase(ctx, &sh, my_bodies.clone(), &accs, dt, vel);
                });
            }
        }
    });

    // Gather final positions.
    let (out, _) = machine.run(|ctx: &mut NodeCtx| {
        let mut v = Vec::new();
        if ctx.me() == 0 {
            for b in 0..n {
                v.push(sh.read_pos(ctx, b));
            }
        }
        ctx.barrier();
        v
    });
    (out.into_iter().next().expect("node 0"), report)
}

/// The build phase body: reset the arena cursor and insert every body of
/// this node's regions into fresh region trees. Fully rebuilds its outputs
/// (arena layout, root list, shared root words), so a crash replay runs it
/// again verbatim.
fn build_phase(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    my_regions: &[usize],
    arena: &mut Arena,
    n: usize,
) -> Vec<(usize, GAddr)> {
    let rsize = 1.0 / GRID as f64;
    arena.next = 0;
    let mut my_roots: Vec<(usize, GAddr)> = Vec::new();
    for &r in my_regions {
        let corner0 = region_corner(r);
        let mut root: Option<GAddr> = None;
        for b in 0..n {
            let p = sh.read_pos(ctx, b);
            ctx.work(4);
            if region_of(&p) != r {
                continue;
            }
            let root_addr = match root {
                Some(a) => a,
                None => {
                    let a = arena.fresh_cell(ctx, sh);
                    root = Some(a);
                    a
                }
            };
            // BH insertion.
            let mut cell = root_addr;
            let mut corner = corner0;
            let mut size = rsize;
            let mut depth = 0;
            loop {
                let (oi, oc) = octant(&p, &corner, size);
                ctx.work(6);
                let slot = sh.cell_child_addr(cell, oi);
                match child_decode(ctx.read::<u64>(slot)) {
                    Child::Empty => {
                        ctx.write(slot, child_encode_body(b));
                        break;
                    }
                    Child::Cell(c) => {
                        cell = c;
                        corner = oc;
                        size /= 2.0;
                        depth += 1;
                    }
                    Child::Body(other) => {
                        if depth >= MAX_DEPTH {
                            break; // folded into the summary only
                        }
                        let nc = arena.fresh_cell(ctx, sh);
                        ctx.write(slot, child_encode_cell(nc));
                        let op = sh.read_pos(ctx, other);
                        let (ooi, _) = octant(&op, &oc, size / 2.0);
                        ctx.write(sh.cell_child_addr(nc, ooi), child_encode_body(other));
                        cell = nc;
                        corner = oc;
                        size /= 2.0;
                        depth += 1;
                    }
                }
            }
        }
        if let Some(a) = root {
            my_roots.push((r, a));
        }
        ctx.write(sh.roots.addr(r), root.map_or(0, |a| a.0));
    }
    my_roots
}

/// One record of the build phase's merge payload: the region a body landed
/// in, the body index, and its position.
const MERGE_REC_BYTES: usize = 4 + 4 + 3 * 8;

/// The build phase under the `commute` directive: instead of every region
/// owner scanning all `n` positions on demand, each node reads its *own*
/// bodies (home reads — no messages), encodes them as `(region, body,
/// position)` records, and broadcasts the records in one bulk payload per
/// peer at the phase barrier. Each owner replays its regions' insertions
/// from the merged set, region-major and body-minor — exactly the
/// serialized build's insertion order — so tree structure, arena
/// addresses, and summary words are bit-identical to [`build_phase`]'s.
/// The full set is returned as the step's position snapshot: the summary
/// and force phases read body positions from it (the same bits the owner
/// wrote), so position blocks are never read-shared at all. Fully
/// rebuilds its outputs, and the merge itself is idempotent (push ids +
/// merge epochs), so a crash replay runs it again verbatim.
#[allow(clippy::type_complexity)]
fn build_phase_commute(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    my_bodies: std::ops::Range<usize>,
    my_regions: &[usize],
    arena: &mut Arena,
    nodes: usize,
    n: usize,
) -> (Vec<(usize, GAddr)>, HashMap<usize, [f64; 3]>) {
    // Privatize: this node's contribution records, broadcast to everyone.
    let mut records = Vec::with_capacity(my_bodies.len() * MERGE_REC_BYTES);
    for b in my_bodies {
        let p = sh.read_pos(ctx, b);
        ctx.work(4);
        let r = region_of(&p);
        records.extend_from_slice(&(r as u32).to_le_bytes());
        records.extend_from_slice(&(b as u32).to_le_bytes());
        for pk in &p {
            records.extend_from_slice(&pk.to_le_bytes());
        }
    }
    let outgoing: Vec<(NodeId, Vec<u8>)> = (0..nodes as NodeId)
        .filter(|_| !records.is_empty())
        .map(|peer| (peer, records.clone()))
        .collect();
    let merged = ctx.merge_exchange(PHASE_BUILD, &outgoing);

    // Decode into the step's position snapshot and this node's per-region
    // membership lists.
    let slot_of: HashMap<usize, usize> =
        my_regions.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut pos_of: HashMap<usize, [f64; 3]> = HashMap::new();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); my_regions.len()];
    // Chunks from one contributor are adjacent and ordered, so
    // concatenating per contributor reassembles its payload even when a
    // record straddles a chunk boundary.
    let mut payloads: Vec<(NodeId, Vec<u8>)> = Vec::new();
    for (src, bytes) in &merged {
        match payloads.last_mut() {
            Some((s, buf)) if s == src => buf.extend_from_slice(bytes),
            _ => payloads.push((*src, bytes.to_vec())),
        }
    }
    for (_src, bytes) in &payloads {
        assert_eq!(bytes.len() % MERGE_REC_BYTES, 0, "corrupt merge payload");
        for rec in bytes.chunks_exact(MERGE_REC_BYTES) {
            let r = u32::from_le_bytes(rec[0..4].try_into().expect("region")) as usize;
            let b = u32::from_le_bytes(rec[4..8].try_into().expect("body")) as usize;
            let mut p = [0.0f64; 3];
            for (k, pk) in p.iter_mut().enumerate() {
                *pk = f64::from_le_bytes(rec[8 + 8 * k..16 + 8 * k].try_into().expect("coord"));
            }
            pos_of.insert(b, p);
            if let Some(&slot) = slot_of.get(&r) {
                members[slot].push(b);
            }
        }
    }
    assert_eq!(pos_of.len(), n, "the merged snapshot must cover every body");

    // Replay in the serialized build's order (contributors arrive sorted
    // by node and bodies are block-distributed, so the lists are already
    // ascending; the sort pins determinism rather than establishing it).
    let rsize = 1.0 / GRID as f64;
    arena.next = 0;
    let mut my_roots: Vec<(usize, GAddr)> = Vec::new();
    for (slot, &r) in my_regions.iter().enumerate() {
        members[slot].sort_unstable();
        let corner0 = region_corner(r);
        let mut root: Option<GAddr> = None;
        for &b in &members[slot] {
            let p = pos_of[&b];
            let root_addr = match root {
                Some(a) => a,
                None => {
                    let a = arena.fresh_cell(ctx, sh);
                    root = Some(a);
                    a
                }
            };
            // The same BH insertion as `build_phase`, with the position
            // lookups served from the merged table instead of the DSM.
            let mut cell = root_addr;
            let mut corner = corner0;
            let mut size = rsize;
            let mut depth = 0;
            loop {
                let (oi, oc) = octant(&p, &corner, size);
                ctx.work(6);
                let slot_addr = sh.cell_child_addr(cell, oi);
                match child_decode(ctx.read::<u64>(slot_addr)) {
                    Child::Empty => {
                        ctx.write(slot_addr, child_encode_body(b));
                        break;
                    }
                    Child::Cell(c) => {
                        cell = c;
                        corner = oc;
                        size /= 2.0;
                        depth += 1;
                    }
                    Child::Body(other) => {
                        if depth >= MAX_DEPTH {
                            break; // folded into the summary only
                        }
                        let nc = arena.fresh_cell(ctx, sh);
                        ctx.write(slot_addr, child_encode_cell(nc));
                        let op = pos_of[&other];
                        let (ooi, _) = octant(&op, &oc, size / 2.0);
                        ctx.write(sh.cell_child_addr(nc, ooi), child_encode_body(other));
                        cell = nc;
                        corner = oc;
                        size /= 2.0;
                        depth += 1;
                    }
                }
            }
        }
        if let Some(a) = root {
            my_roots.push((r, a));
        }
        ctx.write(sh.roots.addr(r), root.map_or(0, |a| a.0));
    }
    (my_roots, pos_of)
}

/// A body position, from the step's merged snapshot (commute mode — no
/// DSM traffic, same bits) or through the DSM.
fn body_pos(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    snapshot: Option<&HashMap<usize, [f64; 3]>>,
    b: usize,
) -> [f64; 3] {
    match snapshot {
        Some(t) => t[&b],
        None => sh.read_pos(ctx, b),
    }
}

/// The force phase body: every owned body traverses all region trees;
/// accelerations overwrite `accs` element-wise (replay-safe).
fn force_phase(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    my_bodies: std::ops::Range<usize>,
    theta: f64,
    accs: &mut [[f64; 3]],
    snapshot: Option<&HashMap<usize, [f64; 3]>>,
) {
    let rsize = 1.0 / GRID as f64;
    for (bi, b) in my_bodies.enumerate() {
        let p = body_pos(ctx, sh, snapshot, b);
        let mut acc = [0.0f64; 3];
        for r in 0..REGIONS {
            let rw = ctx.read::<u64>(sh.roots.addr(r));
            if rw != 0 {
                walk_force(ctx, sh, GAddr(rw), rsize, b, &p, theta, &mut acc, snapshot);
            }
        }
        accs[bi] = acc;
    }
}

/// The advance phase body: owners integrate and write new positions. The
/// velocity array is the phase's replay state — it accumulates across
/// steps, so the recovery wrapper must roll it back alongside shared
/// memory.
fn advance_phase(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    my_bodies: std::ops::Range<usize>,
    accs: &[[f64; 3]],
    dt: f64,
    vel: &mut [[f64; 3]],
) {
    for (bi, b) in my_bodies.enumerate() {
        let mut p = sh.read_pos(ctx, b);
        for k in 0..3 {
            vel[b][k] += accs[bi][k] * dt;
            p[k] = (p[k] + vel[b][k] * dt).rem_euclid(1.0);
        }
        ctx.work(12);
        ctx.write(sh.px.addr(b), p[0]);
        ctx.write(sh.py.addr(b), p[1]);
        ctx.write(sh.pz.addr(b), p[2]);
    }
}

/// Post-order COM computation over one owned region tree. Leaf positions
/// come from the merge snapshot in commute mode.
fn com_pass(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    cell: GAddr,
    snapshot: Option<&HashMap<usize, [f64; 3]>>,
) -> (f64, [f64; 3]) {
    let mut m = 0.0f64;
    let mut c = [0.0f64; 3];
    for oi in 0..8 {
        let w = ctx.read::<u64>(sh.cell_child_addr(cell, oi));
        let (cm, cc) = match child_decode(w) {
            Child::Empty => continue,
            Child::Body(b) => {
                let bm = ctx.read::<f64>(sh.mass.addr(b));
                (bm, body_pos(ctx, sh, snapshot, b))
            }
            Child::Cell(x) => com_pass(ctx, sh, x, snapshot),
        };
        m += cm;
        for k in 0..3 {
            c[k] += cm * cc[k];
        }
        ctx.work(4);
    }
    if m > 0.0 {
        for ck in c.iter_mut() {
            *ck /= m;
        }
    }
    ctx.write(sh.cell_mass_addr(cell), m);
    for k in 0..3 {
        ctx.write(sh.cell_com_addr(cell, k), c[k]);
    }
    (m, c)
}

/// Force traversal of one region tree through the DSM.
#[allow(clippy::too_many_arguments)]
fn walk_force(
    ctx: &mut NodeCtx,
    sh: &BarnesShared,
    cell: GAddr,
    size: f64,
    b: usize,
    p: &[f64; 3],
    theta: f64,
    acc: &mut [f64; 3],
    snapshot: Option<&HashMap<usize, [f64; 3]>>,
) {
    let mass = ctx.read::<f64>(sh.cell_mass_addr(cell));
    let com = [
        ctx.read::<f64>(sh.cell_com_addr(cell, 0)),
        ctx.read::<f64>(sh.cell_com_addr(cell, 1)),
        ctx.read::<f64>(sh.cell_com_addr(cell, 2)),
    ];
    let dx = com[0] - p[0];
    let dy = com[1] - p[1];
    let dz = com[2] - p[2];
    let d2 = dx * dx + dy * dy + dz * dz;
    ctx.work(8);
    if mass > 0.0 && size * size < theta * theta * d2 {
        accumulate(acc, p, &com, mass);
        ctx.work(10);
        return;
    }
    for oi in 0..8 {
        let w = ctx.read::<u64>(sh.cell_child_addr(cell, oi));
        match child_decode(w) {
            Child::Empty => {}
            Child::Body(j) => {
                if j != b {
                    let q = body_pos(ctx, sh, snapshot, j);
                    let mj = ctx.read::<f64>(sh.mass.addr(j));
                    accumulate(acc, p, &q, mj);
                    ctx.work(10);
                }
            }
            Child::Cell(x) => walk_force(ctx, sh, x, size / 2.0, b, p, theta, acc, snapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_cube() {
        assert_eq!(region_of(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(region_of(&[0.99, 0.99, 0.99]), REGIONS - 1);
        assert_eq!(region_of(&[0.3, 0.0, 0.0]), 1);
        // Boundary clamping.
        assert_eq!(region_of(&[1.0, 1.0, 1.0]), REGIONS - 1);
    }

    #[test]
    fn octant_selection() {
        let corner = [0.0, 0.0, 0.0];
        let (i, c) = octant(&[0.1, 0.1, 0.1], &corner, 1.0);
        assert_eq!(i, 0);
        assert_eq!(c, corner);
        let (i, c) = octant(&[0.9, 0.1, 0.9], &corner, 1.0);
        assert_eq!(i, 0b101);
        assert_eq!(c, [0.5, 0.0, 0.5]);
    }

    #[test]
    fn child_encoding_roundtrip() {
        assert_eq!(child_decode(0), Child::Empty);
        assert_eq!(child_decode(child_encode_body(42)), Child::Body(42));
        let a = GAddr(0x1000);
        assert_eq!(child_decode(child_encode_cell(a)), Child::Cell(a));
    }

    #[test]
    fn seq_tree_masses_sum() {
        let cfg = BarnesConfig { n: 256, steps: 1, ..Default::default() };
        let (pos, mass) = initial_bodies(&cfg);
        let t = seq_build(&pos, &mass);
        let total: f64 =
            (0..REGIONS).filter_map(|r| t.roots[r]).map(|root| t.cells[root].mass).sum();
        let expect: f64 = mass.iter().sum();
        assert!((total - expect).abs() < 1e-12, "{total} vs {expect}");
    }

    #[test]
    fn cell_count_matches_seq_build() {
        // The arena-sizing walk must allocate exactly as many cells as the
        // real insertion does, region by region — including at the paper's
        // clustered n=16384, where the uniform 4n/P estimate falls short.
        for n in [128usize, 1024, 16384] {
            let cfg = BarnesConfig { n, steps: 1, ..Default::default() };
            let (pos, mass) = initial_bodies(&cfg);
            let t = seq_build(&pos, &mass);
            let counted: u64 = (0..REGIONS).map(|r| count_region_cells(&pos, r)).sum();
            assert_eq!(counted, t.cells.len() as u64, "n={n}");
        }
    }

    #[test]
    fn paper_scale_arena_fits_clustered_regions() {
        // Regression for the paper-scale build panic: the densest node's
        // region trees need more cells than the uniform estimate, and the
        // occupancy-based capacity must cover them with slack.
        let cfg = BarnesConfig::default(); // n = 16384
        let (pos, _) = initial_bodies(&cfg);
        let nodes = 32;
        let uniform = (4 * cfg.n / nodes + 64) as u64;
        let mut per_node = vec![0u64; nodes];
        for r in 0..REGIONS {
            per_node[r % nodes] += count_region_cells(&pos, r);
        }
        let needed = *per_node.iter().max().unwrap();
        assert!(needed > uniform, "clustered demand {needed} should exceed uniform {uniform}");
        assert!(needed + needed / 4 + 16 > needed, "slack must be positive");
    }

    #[test]
    fn seq_forces_approximate_direct_sum() {
        // With θ → 0 the BH force must equal the direct O(n²) sum.
        let cfg = BarnesConfig { n: 64, steps: 1, theta: 1e-9, ..Default::default() };
        let (pos, mass) = initial_bodies(&cfg);
        let t = seq_build(&pos, &mass);
        for b in [0usize, 13, 63] {
            let bh = seq_force(&t, b, &pos, &mass, cfg.theta);
            let mut direct = [0.0f64; 3];
            for j in 0..cfg.n {
                if j != b {
                    accumulate(&mut direct, &pos[b], &pos[j], mass[j]);
                }
            }
            for k in 0..3 {
                assert!(
                    (bh[k] - direct[k]).abs() < 1e-9,
                    "body {b} axis {k}: {} vs {}",
                    bh[k],
                    direct[k]
                );
            }
        }
    }

    #[test]
    fn seq_barnes_runs_and_stays_in_box() {
        let cfg = BarnesConfig { n: 128, steps: 2, ..Default::default() };
        let pos = seq_barnes(&cfg);
        for p in &pos {
            for k in 0..3 {
                assert!(p[k].is_finite() && (0.0..1.0).contains(&p[k]));
            }
        }
    }
}
