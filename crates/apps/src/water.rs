//! **Water** — molecular dynamics with a half-shell spherical cutoff
//! (§5.3; SPLASH's water code, simplified to a Lennard-Jones system).
//!
//! `n` molecules in a periodic box. Each time step has two parallel
//! phases:
//!
//! 1. **interactions** — each molecule computes pair forces with the n/2
//!    molecules following it (pairs within the cutoff radius, half the box
//!    length). This reads the *positions* of remote molecules — a static,
//!    repetitive producer–consumer pattern: "a molecule's position updated
//!    in one iteration is read by n/2 other molecules in the following
//!    iteration". Forces accumulate in private arrays and are combined
//!    with the language-level reduction (reductions are not a predictive
//!    protocol target, §1).
//! 2. **advance** — owners integrate velocities and write the new
//!    positions (owner writes that invalidate all cached copies; the
//!    predictive protocol records and pre-invalidates/pushes them).
//!
//! [`run_splash_water`] is the Figure-7 baseline: the same physics
//! restructured the way the Splash-2 code uses transparent shared memory —
//! per-processor partial-force arrays living in shared memory and summed
//! by owners through ordinary loads, with no protocol directives.

use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::AppRun;

/// Water configuration.
#[derive(Debug, Clone, Copy)]
pub struct WaterConfig {
    /// Number of molecules (the paper uses 512).
    pub n: usize,
    /// Time steps (the paper uses 20).
    pub steps: usize,
    /// Integration step.
    pub dt: f64,
    /// RNG seed for initial conditions.
    pub seed: u64,
}

impl Default for WaterConfig {
    fn default() -> Self {
        WaterConfig { n: 512, steps: 20, dt: 1e-3, seed: 0x5eed_0001 }
    }
}

impl WaterConfig {
    /// Box side for the configured density (reduced units, ρ = 0.8).
    pub fn box_len(&self) -> f64 {
        (self.n as f64 / 0.8).cbrt()
    }

    /// Cutoff radius: half the box length (§5.3).
    pub fn cutoff(&self) -> f64 {
        self.box_len() / 2.0
    }
}

/// Deterministic initial state: a jittered cubic lattice with zero
/// velocities.
pub fn initial_positions(cfg: &WaterConfig) -> Vec<[f64; 3]> {
    let l = cfg.box_len();
    let per_side = (cfg.n as f64).cbrt().ceil() as usize;
    let spacing = l / per_side as f64;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pos = Vec::with_capacity(cfg.n);
    'outer: for ix in 0..per_side {
        for iy in 0..per_side {
            for iz in 0..per_side {
                if pos.len() == cfg.n {
                    break 'outer;
                }
                let jitter = 0.05 * spacing;
                pos.push([
                    (ix as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iy as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iz as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                ]);
            }
        }
    }
    pos
}

/// Minimum-image displacement component.
#[inline]
fn min_image(mut d: f64, l: f64) -> f64 {
    if d > l / 2.0 {
        d -= l;
    } else if d < -l / 2.0 {
        d += l;
    }
    d
}

/// Lennard-Jones force magnitude over distance (f/r), truncated.
#[inline]
fn lj_force_over_r(r2: f64) -> f64 {
    let inv_r2 = 1.0 / r2;
    let s6 = inv_r2 * inv_r2 * inv_r2;
    24.0 * inv_r2 * s6 * (2.0 * s6 - 1.0)
}

/// Should the (i, j = i+d mod n) pair be computed by molecule `i`?
/// Half-shell rule: d in 1..=n/2, with the d == n/2 pairs (when n is even)
/// computed only from the lower index to avoid double counting.
#[inline]
fn owns_pair(i: usize, d: usize, n: usize) -> bool {
    d >= 1 && (2 * d < n || (2 * d == n && i < (i + d) % n))
}

/// Clamp a force component to keep the simplified integrator stable when
/// the jittered lattice makes close pairs.
#[inline]
fn clamp_force(f: f64) -> f64 {
    f.clamp(-1e3, 1e3)
}

/// The sequential reference. Returns final positions.
pub fn seq_water(cfg: &WaterConfig) -> Vec<[f64; 3]> {
    let n = cfg.n;
    let l = cfg.box_len();
    let rc2 = cfg.cutoff() * cfg.cutoff();
    let mut pos = initial_positions(cfg);
    let mut vel = vec![[0.0f64; 3]; n];
    for _ in 0..cfg.steps {
        let mut force = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for d in 1..=n / 2 {
                if !owns_pair(i, d, n) {
                    continue;
                }
                let j = (i + d) % n;
                let dx = min_image(pos[i][0] - pos[j][0], l);
                let dy = min_image(pos[i][1] - pos[j][1], l);
                let dz = min_image(pos[i][2] - pos[j][2], l);
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 < rc2 && r2 > 1e-12 {
                    let f = lj_force_over_r(r2);
                    let (fx, fy, fz) =
                        (clamp_force(f * dx), clamp_force(f * dy), clamp_force(f * dz));
                    force[i][0] += fx;
                    force[i][1] += fy;
                    force[i][2] += fz;
                    force[j][0] -= fx;
                    force[j][1] -= fy;
                    force[j][2] -= fz;
                }
            }
        }
        for i in 0..n {
            for k in 0..3 {
                vel[i][k] += force[i][k] * cfg.dt;
                pos[i][k] = (pos[i][k] + vel[i][k] * cfg.dt).rem_euclid(l);
            }
        }
    }
    pos
}

/// Checksum over positions (order-independent enough for comparisons, but
/// computed identically everywhere).
pub fn position_checksum(pos: &[[f64; 3]]) -> f64 {
    pos.iter()
        .enumerate()
        .map(|(i, p)| (1.0 + (i % 7) as f64) * (p[0] + 2.0 * p[1] + 3.0 * p[2]))
        .sum()
}

/// Phase ids (as the C\*\* compiler would assign for the two-phase main
/// loop).
const PHASE_INTERACT: u32 = 1;
const PHASE_ADVANCE: u32 = 2;

/// Run the data-parallel Water under the given machine configuration.
/// Works unoptimized (Stache) and optimized (predictive) — the directives
/// are no-ops in the former.
pub fn run_water(mcfg: MachineConfig, cfg: &WaterConfig) -> AppRun {
    let (pos, report) = water_driver(mcfg, cfg);
    AppRun { report, checksum: position_checksum(&pos) }
}

/// Final positions from a DSM run (validation helper).
pub fn water_final_positions(mcfg: MachineConfig, cfg: &WaterConfig) -> Vec<[f64; 3]> {
    water_driver(mcfg, cfg).0
}

/// The shared driver: set up, run the measured main loop, gather
/// positions.
fn water_driver(
    mcfg: MachineConfig,
    cfg: &WaterConfig,
) -> (Vec<[f64; 3]>, prescient_runtime::RunReport) {
    let n = cfg.n;
    let l = cfg.box_len();
    let rc2 = cfg.cutoff() * cfg.cutoff();
    let dt = cfg.dt;
    let steps = cfg.steps;
    let init = initial_positions(cfg);

    let mut machine = Machine::new(mcfg);
    let px = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    let py = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    let pz = Agg1D::<f64>::new(&machine, n, Dist1D::Block);

    // Owners write initial positions (not measured).
    machine.run(|ctx: &mut NodeCtx| {
        for i in px.my_range(ctx.me()) {
            ctx.write(px.addr(i), init[i][0]);
            ctx.write(py.addr(i), init[i][1]);
            ctx.write(pz.addr(i), init[i][2]);
        }
        ctx.barrier();
    });

    let (_, report) = machine.run(|ctx: &mut NodeCtx| {
        let mine = px.my_range(ctx.me());
        // Private (non-shared) per-node state. `vel` survives across
        // phases, so the advance phase passes it as its replay state —
        // a crash rolls it back together with shared memory.
        let mut vel = vec![[0.0f64; 3]; n];
        for _step in 0..steps {
            // ---- Phase 1: interactions ------------------------------
            // The force accumulator is the phase's replay state: it is
            // zeroed here, so a replayed body re-accumulates from clean.
            let mut force = vec![0.0f64; 3 * n];
            ctx.phase(PHASE_INTERACT, &mut force, |ctx, force| {
                for i in mine.clone() {
                    let xi = ctx.read::<f64>(px.addr(i));
                    let yi = ctx.read::<f64>(py.addr(i));
                    let zi = ctx.read::<f64>(pz.addr(i));
                    for d in 1..=n / 2 {
                        if !owns_pair(i, d, n) {
                            continue;
                        }
                        let j = (i + d) % n;
                        let xj = ctx.read::<f64>(px.addr(j));
                        let yj = ctx.read::<f64>(py.addr(j));
                        let zj = ctx.read::<f64>(pz.addr(j));
                        let dx = min_image(xi - xj, l);
                        let dy = min_image(yi - yj, l);
                        let dz = min_image(zi - zj, l);
                        let r2 = dx * dx + dy * dy + dz * dz;
                        // Distance check + pair bookkeeping; the in-cutoff
                        // charge models the paper's multi-site water potential
                        // (hundreds of flops per molecule pair), which our
                        // simplified LJ kernel stands in for.
                        ctx.work(30);
                        if r2 < rc2 && r2 > 1e-12 {
                            let f = lj_force_over_r(r2);
                            let (fx, fy, fz) =
                                (clamp_force(f * dx), clamp_force(f * dy), clamp_force(f * dz));
                            ctx.work(300);
                            force[3 * i] += fx;
                            force[3 * i + 1] += fy;
                            force[3 * i + 2] += fz;
                            force[3 * j] -= fx;
                            force[3 * j + 1] -= fy;
                            force[3 * j + 2] -= fz;
                        }
                    }
                }
            });

            // ---- Reduction (language feature) -----------------------
            ctx.allreduce_sum(&mut force);

            // ---- Phase 2: advance -----------------------------------
            ctx.phase(PHASE_ADVANCE, &mut vel, |ctx, vel| {
                for i in mine.clone() {
                    let mut p = [
                        ctx.read::<f64>(px.addr(i)),
                        ctx.read::<f64>(py.addr(i)),
                        ctx.read::<f64>(pz.addr(i)),
                    ];
                    for k in 0..3 {
                        vel[i][k] += force[3 * i + k] * dt;
                        p[k] = (p[k] + vel[i][k] * dt).rem_euclid(l);
                    }
                    ctx.work(12);
                    ctx.write(px.addr(i), p[0]);
                    ctx.write(py.addr(i), p[1]);
                    ctx.write(pz.addr(i), p[2]);
                }
            });
        }
    });

    // Gather final positions for validation.
    let (sums, _) = machine.run(|ctx: &mut NodeCtx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..n {
                out.push([
                    ctx.read::<f64>(px.addr(i)),
                    ctx.read::<f64>(py.addr(i)),
                    ctx.read::<f64>(pz.addr(i)),
                ]);
            }
        }
        ctx.barrier();
        out
    });
    (sums.into_iter().next().expect("node 0"), report)
}

/// The Splash-style baseline (Figure 7's third bar): transparent shared
/// memory only. Per-processor partial-force arrays live in shared memory
/// (one row per node); owners sum all rows through ordinary loads. No
/// directives, no pre-sends — run it on a Stache machine.
pub fn run_splash_water(mcfg: MachineConfig, cfg: &WaterConfig) -> AppRun {
    assert!(
        !mcfg.protocol.is_predictive(),
        "the Splash baseline uses transparent shared memory only"
    );
    let n = cfg.n;
    let l = cfg.box_len();
    let rc2 = cfg.cutoff() * cfg.cutoff();
    let dt = cfg.dt;
    let steps = cfg.steps;
    let init = initial_positions(cfg);
    let nodes = mcfg.nodes;

    let mut machine = Machine::new(mcfg);
    let px = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    let py = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    let pz = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    // Per-node partial forces in shared memory: row p is node p's
    // contribution, 3n floats (SPLASH-2's per-process arrays).
    let partial = prescient_runtime::Agg2D::<f64>::new(
        &machine,
        nodes,
        3 * n,
        prescient_runtime::Dist2D::RowBlock,
    );

    machine.run(|ctx: &mut NodeCtx| {
        for i in px.my_range(ctx.me()) {
            ctx.write(px.addr(i), init[i][0]);
            ctx.write(py.addr(i), init[i][1]);
            ctx.write(pz.addr(i), init[i][2]);
        }
        ctx.barrier();
    });

    let (_, report) = machine.run(|ctx: &mut NodeCtx| {
        let mine = px.my_range(ctx.me());
        let me = ctx.me() as usize;
        let mut vel = vec![[0.0f64; 3]; n];
        for _ in 0..steps {
            // Interactions: accumulate locally, then publish the whole
            // partial row to shared memory (home writes).
            let mut force = vec![0.0f64; 3 * n];
            for i in mine.clone() {
                let xi = ctx.read::<f64>(px.addr(i));
                let yi = ctx.read::<f64>(py.addr(i));
                let zi = ctx.read::<f64>(pz.addr(i));
                for d in 1..=n / 2 {
                    if !owns_pair(i, d, n) {
                        continue;
                    }
                    let j = (i + d) % n;
                    let xj = ctx.read::<f64>(px.addr(j));
                    let yj = ctx.read::<f64>(py.addr(j));
                    let zj = ctx.read::<f64>(pz.addr(j));
                    let dx = min_image(xi - xj, l);
                    let dy = min_image(yi - yj, l);
                    let dz = min_image(zi - zj, l);
                    let r2 = dx * dx + dy * dy + dz * dz;
                    // Distance check + pair bookkeeping; the in-cutoff
                    // charge models the paper's multi-site water potential
                    // (hundreds of flops per molecule pair), which our
                    // simplified LJ kernel stands in for.
                    ctx.work(30);
                    if r2 < rc2 && r2 > 1e-12 {
                        let f = lj_force_over_r(r2);
                        let (fx, fy, fz) =
                            (clamp_force(f * dx), clamp_force(f * dy), clamp_force(f * dz));
                        ctx.work(300);
                        force[3 * i] += fx;
                        force[3 * i + 1] += fy;
                        force[3 * i + 2] += fz;
                        force[3 * j] -= fx;
                        force[3 * j + 1] -= fy;
                        force[3 * j + 2] -= fz;
                    }
                }
            }
            for k in 0..3 * n {
                ctx.write(partial.addr(me, k), force[k]);
            }
            ctx.barrier();

            // Owners sum contributing nodes' partial rows through shared
            // memory — the transparent-shared-memory reduction. In the
            // half-shell decomposition only this node and the (cyclically)
            // preceding P/2 nodes can touch our molecules, so only those
            // rows are read (as the SPLASH code's per-molecule lock
            // accumulation effectively does).
            let contributors: Vec<usize> =
                (0..=nodes / 2).map(|k| (me + nodes - k) % nodes).collect();
            for i in mine.clone() {
                let mut f = [0.0f64; 3];
                for &p in &contributors {
                    for k in 0..3 {
                        f[k] += ctx.read::<f64>(partial.addr(p, 3 * i + k));
                    }
                    ctx.work(3);
                }
                let mut pv = [
                    ctx.read::<f64>(px.addr(i)),
                    ctx.read::<f64>(py.addr(i)),
                    ctx.read::<f64>(pz.addr(i)),
                ];
                for k in 0..3 {
                    vel[i][k] += f[k] * dt;
                    pv[k] = (pv[k] + vel[i][k] * dt).rem_euclid(l);
                }
                ctx.work(12);
                ctx.write(px.addr(i), pv[0]);
                ctx.write(py.addr(i), pv[1]);
                ctx.write(pz.addr(i), pv[2]);
            }
            ctx.barrier();
        }
    });

    let (sums, _) = machine.run(|ctx: &mut NodeCtx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            for i in 0..n {
                out.push([
                    ctx.read::<f64>(px.addr(i)),
                    ctx.read::<f64>(py.addr(i)),
                    ctx.read::<f64>(pz.addr(i)),
                ]);
            }
        }
        ctx.barrier();
        out
    });
    AppRun { report, checksum: position_checksum(&sums[0]) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_ownership_covers_each_pair_once() {
        for n in [6usize, 7, 8, 16] {
            let mut count = vec![vec![0u32; n]; n];
            for i in 0..n {
                for d in 1..=n / 2 {
                    if owns_pair(i, d, n) {
                        let j = (i + d) % n;
                        count[i.min(j)][i.max(j)] += 1;
                    }
                }
            }
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(count[i][j], 1, "pair ({i},{j}) of n={n}");
                }
            }
        }
    }

    #[test]
    fn min_image_wraps() {
        let l = 10.0;
        assert_eq!(min_image(6.0, l), -4.0);
        assert_eq!(min_image(-6.0, l), 4.0);
        assert_eq!(min_image(3.0, l), 3.0);
    }

    #[test]
    fn initial_positions_in_box() {
        let cfg = WaterConfig { n: 64, steps: 1, ..Default::default() };
        let pos = initial_positions(&cfg);
        assert_eq!(pos.len(), 64);
        let l = cfg.box_len();
        for p in &pos {
            for k in 0..3 {
                assert!(p[k] >= -0.5 && p[k] <= l + 0.5);
            }
        }
        // Deterministic.
        assert_eq!(pos, initial_positions(&cfg));
    }

    #[test]
    fn seq_water_is_stable() {
        let cfg = WaterConfig { n: 64, steps: 5, ..Default::default() };
        let pos = seq_water(&cfg);
        let l = cfg.box_len();
        for p in &pos {
            for k in 0..3 {
                assert!(p[k].is_finite() && p[k] >= 0.0 && p[k] < l);
            }
        }
    }

    #[test]
    fn lj_force_signs() {
        // Repulsive when close (r < 2^(1/6)), attractive when farther.
        assert!(lj_force_over_r(1.0) > 0.0);
        assert!(lj_force_over_r(2.0) < 0.0);
    }
}
