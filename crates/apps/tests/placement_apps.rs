//! Application-level placement tests (DESIGN.md §14): online home
//! migration must be invisible to the evaluation apps — bit-identical
//! checksums against a static-layout run — while cutting message counts
//! where the sharing pattern has third-party homes, and it must stay
//! correct on a chaotic fabric and across a crash.
//!
//! All legs run plain Stache over a rotate-shifted layout: the apps
//! allocate owner-homed, so the unshifted default is already
//! placement-optimal; the shift is the deliberately bad static placement
//! the migration recovers from.
//!
//! What is gated where: water's producer–consumer phases are fully
//! deterministic, so the water legs gate miss/`blocks_moved` parity and a
//! strict message reduction on top of checksum identity. Barnes under a
//! shifted layout is *contended* — concurrent readers race the writer's
//! invalidations, so demand-miss counts vary run-to-run even with
//! placement compiled out — and the chaos leg perturbs retry interleaving
//! the same way; those legs gate the checksum (the correctness
//! invariant) and that migration actually fired, not the traffic counts.

use std::time::Duration;

use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_runtime::{FabricKind, MachineConfig, PlacementSpec};
use prescient_stache::{PlacementConfig, RetryConfig};
use prescient_tempest::{CrashPlan, FaultPlan};

const NODES: usize = 4;
const BS: usize = 64;

fn eager(min_count: u64) -> PlacementSpec {
    PlacementSpec::Online(PlacementConfig { min_count, dominance_pct: 60, max_per_window: 4096 })
}

/// Enough steps that the post-migration savings dominate the one-time
/// forwarding cost of re-learning homes (at 4 steps they exactly cancel).
fn water_cfg() -> WaterConfig {
    WaterConfig { n: 64, steps: 8, ..Default::default() }
}

fn blocks_moved(run: &AppRun) -> u64 {
    let t = run.report.total_stats();
    t.misses() + t.presend_blocks_out
}

#[test]
fn water_online_migration_is_transparent_and_cuts_messages() {
    let cfg = water_cfg();
    let base = MachineConfig::stache(NODES, BS).with_home_shift(1).validated();
    let stat = run_water(base.clone(), &cfg);
    let moved = run_water(base.with_placement(eager(4)), &cfg);
    assert_eq!(
        moved.checksum.to_bits(),
        stat.checksum.to_bits(),
        "migration must not perturb water's result"
    );
    assert_eq!(blocks_moved(&moved), blocks_moved(&stat), "blocks_moved must be bit-identical");
    let (ts, tm) = (stat.report.total_stats(), moved.report.total_stats());
    assert!(tm.migrations > 0, "water's producer-consumer traffic must trigger migrations");
    assert!(tm.forwards > 0, "stale-layout requests must be forwarded");
    assert!(
        tm.msgs_out < ts.msgs_out,
        "migrated homes must cut messages ({} vs {})",
        tm.msgs_out,
        ts.msgs_out
    );
}

/// Barnes on the sharded backend: the tree blocks are read by every node,
/// so shifted-layout runs are contended and their miss counts are not
/// run-to-run stable (placement or no placement). The gated invariant is
/// the checksum; the migrations counter proves placement was live.
#[test]
fn barnes_online_migration_is_transparent_on_the_sharded_backend() {
    let cfg = BarnesConfig { n: 192, steps: 2, ..Default::default() };
    let base = MachineConfig::stache(NODES, BS)
        .with_fabric(FabricKind::Sharded { shards: 2 })
        .with_home_shift(2)
        .validated();
    let stat = run_barnes(base.clone(), &cfg);
    let moved = run_barnes(base.with_placement(eager(2)), &cfg);
    assert_eq!(
        moved.checksum.to_bits(),
        stat.checksum.to_bits(),
        "migration must not perturb barnes' result"
    );
    assert!(moved.report.total_stats().migrations > 0, "barnes must migrate at this scale");
}

/// Chaos leg: drops, duplicates and reorders must not perturb what the
/// migrated run *computes*. The traffic counters are not gated: a lost
/// grant makes the requester retry with a fresh seq, which the home
/// cannot tell from a new request, so the placement tally — and with it
/// the exact migration/forward counts — shifts a little under faults.
#[test]
fn water_migration_survives_a_chaotic_fabric() {
    let cfg = water_cfg();
    let online = MachineConfig::stache(NODES, BS).with_home_shift(1).with_placement(eager(4));
    let clean = run_water(online.clone().validated(), &cfg);
    let chaos = run_water(
        online
            .with_faults(FaultPlan::chaos(0xFEED))
            .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 })
            .validated(),
        &cfg,
    );
    assert_eq!(
        chaos.checksum.to_bits(),
        clean.checksum.to_bits(),
        "chaos must not perturb the migrated run's result"
    );
    assert!(clean.report.total_stats().migrations > 0);
    assert!(chaos.report.total_stats().migrations > 0, "migration must stay live under chaos");
}

/// Crash mid-run with migration active: rollback restores the forwarding
/// stubs and the placement state from the checkpoint, the replayed
/// windows re-decide on the restored traffic, and the recovered run
/// matches the crash-free one bit-for-bit — including how many blocks
/// migrated.
#[test]
fn water_crash_recovers_with_migration_bit_identically() {
    let cfg = water_cfg();
    let online =
        MachineConfig::stache(NODES, BS).with_home_shift(1).with_placement(eager(4)).validated();
    let base = run_water(online.clone(), &cfg);
    assert!(base.report.total_stats().migrations > 0, "must migrate before the crash point");
    let run = run_water(online.with_crash_plan(CrashPlan::new(2, 6)), &cfg);
    assert_eq!(
        run.checksum.to_bits(),
        base.checksum.to_bits(),
        "recovery with live stubs must preserve the checksum"
    );
    assert_eq!(blocks_moved(&run), blocks_moved(&base));
    let (tb, tr) = (base.report.total_stats(), run.report.total_stats());
    assert_eq!(tr.migrations, tb.migrations, "replayed windows must re-decide identically");
    assert_eq!(tr.recoveries, NODES as u64, "every node ran the recovery protocol once");
}
