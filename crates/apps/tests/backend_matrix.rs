//! Backend-equivalence suite: the `Transport` backends must be
//! indistinguishable above the fabric. Each evaluation application runs
//! at small scale on all three backends — per-node channels, shard
//! loops, and the loopback socket pair — and every deterministic gated
//! counter (checksum, msgs, bytes_moved, blocks_moved) must be
//! bit-identical, because faults, batching, tracing, and teardown
//! accounting all sit *above* the `Transport` trait. A divergence means
//! a backend reordered, duplicated, or dropped protocol traffic.
//!
//! The chaos test covers the faultable pair (channel + sharded): the
//! fault layer hashes per-link message indices, not threads or clocks,
//! so an identical plan must leave both backends at an identical final
//! state.

use prescient_apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use std::time::Duration;

use prescient_apps::AppRun;
use prescient_runtime::{FabricKind, MachineConfig};
use prescient_stache::RetryConfig;
use prescient_tempest::FaultPlan;

const NODES: usize = 4;
const BS: usize = 32;

/// No faults are active in the equivalence tests, so no message can be
/// lost and a retry can only be *spurious* — a scheduler stall on an
/// oversubscribed test runner outlasting the default 200ms timeout,
/// which would inflate `msgs` nondeterministically. A generous timeout
/// keeps the retry machinery compiled in but silent, so the msgs column
/// stays comparable. The chaos test below keeps the default: there
/// retries are load-bearing and only final state is compared.
fn no_spurious_retries(cfg: MachineConfig) -> MachineConfig {
    cfg.with_retry(RetryConfig { timeout: Duration::from_secs(60), max_retries: 3 })
}

/// Shards chosen to split 4 nodes unevenly ({0,3}, {1}, {2}), so the
/// suite exercises multi-member and single-member shard loops at once.
const BACKENDS: [FabricKind; 3] =
    [FabricKind::Channel, FabricKind::Sharded { shards: 3 }, FabricKind::SocketPair { split: 0 }];

/// The gated signature of a run: checksum bits plus the deterministic
/// protocol counters. `wall_ms` and the `wire_*` keys are timing
/// artifacts and are never compared.
fn signature(run: &AppRun) -> (u64, u64, u64, u64) {
    let t = run.report.total_stats();
    (run.checksum.to_bits(), t.msgs_out, run.report.bytes_moved(), run.report.blocks_moved())
}

fn assert_equivalent(what: &str, runs: &[(FabricKind, AppRun)]) {
    let (base_kind, base) = &runs[0];
    for (kind, run) in &runs[1..] {
        assert_eq!(
            signature(run),
            signature(base),
            "{what}: (checksum, msgs, bytes_moved, blocks_moved) must be bit-identical \
             on {kind:?} and {base_kind:?}"
        );
    }
}

#[test]
fn water_predictive_is_backend_invariant() {
    let cfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    let runs: Vec<_> = BACKENDS
        .iter()
        .map(|&k| {
            let m = no_spurious_retries(MachineConfig::predictive(NODES, BS).validated());
            (k, run_water(m.with_fabric(k), &cfg))
        })
        .collect();
    assert!(
        runs[0].1.report.total_stats().presend_blocks_out > 0,
        "water must pre-send at this scale, or the matrix is vacuous"
    );
    assert_equivalent("water/predictive", &runs);
}

#[test]
fn barnes_stache_is_backend_invariant() {
    let cfg = BarnesConfig { n: 192, steps: 2, ..Default::default() };
    let runs: Vec<_> = BACKENDS
        .iter()
        .map(|&k| {
            let m = no_spurious_retries(MachineConfig::stache(NODES, BS).validated());
            (k, run_barnes(m.with_fabric(k), &cfg))
        })
        .collect();
    assert_equivalent("barnes/stache", &runs);
}

#[test]
fn adaptive_predictive_is_backend_invariant() {
    // Config chosen for *run*-determinism: some small meshes (e.g. n=12,
    // tau=0.4) leave one pre-send racing the consumer's demand fetch, so
    // msgs/bytes wobble between repeated runs on ANY backend — useless
    // for an equivalence test. n=16/tau=0.5 was probed 8x run-identical.
    let cfg = AdaptiveConfig { n: 16, iters: 6, tau: 0.5, max_depth: 2, flush_every: None };
    let runs: Vec<_> = BACKENDS
        .iter()
        .map(|&k| {
            let m = no_spurious_retries(MachineConfig::predictive(NODES, BS).validated());
            let (run, _, _) = run_adaptive_full(m.with_fabric(k), &cfg);
            (k, run)
        })
        .collect();
    assert_equivalent("adaptive/predictive", &runs);
}

#[test]
fn chaos_final_state_is_identical_across_in_process_backends() {
    // Timing-dependent retries make message counts legitimately diverge
    // under chaos, but the *final state* may not: the protocol absorbs
    // drops/duplicates/reorders identically wherever its handlers run.
    let cfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    let mut checksums = Vec::new();
    for k in [FabricKind::Channel, FabricKind::Sharded { shards: 3 }] {
        let m = MachineConfig::stache(NODES, BS)
            .validated()
            .with_faults(FaultPlan::chaos(0xFEED))
            .with_fabric(k);
        checksums.push(run_water(m, &cfg).checksum.to_bits());
    }
    assert_eq!(
        checksums[0], checksums[1],
        "chaos on the sharded backend must converge to the channel backend's state"
    );
}
