//! The commutative-merge protocol mode on Barnes: the privatized build
//! must produce bit-identical physics to the demand-driven build (the
//! replay reconstructs the serialized insertion order exactly) while
//! moving measurably fewer messages — the paper's conflict phase, which
//! the predictive protocol must leave without action, turned into bulk
//! barrier traffic.

use prescient_apps::barnes::{run_barnes, run_barnes_commute, BarnesConfig};
use prescient_runtime::MachineConfig;
use prescient_tempest::BatchConfig;

const NODES: usize = 4;
const BS: usize = 64;

fn bcfg() -> BarnesConfig {
    BarnesConfig { n: 256, steps: 2, ..Default::default() }
}

#[test]
fn commute_build_is_bit_identical_to_stache() {
    let cfg = bcfg();
    let stache = run_barnes(MachineConfig::stache(NODES, BS).validated(), &cfg);
    let commute = run_barnes_commute(MachineConfig::commutative(NODES, BS).validated(), &cfg);
    assert_eq!(
        commute.checksum.to_bits(),
        stache.checksum.to_bits(),
        "merged trees must replay the serialized insertion order exactly \
         ({} vs {})",
        commute.checksum,
        stache.checksum,
    );
}

#[test]
fn commute_build_moves_fewer_messages() {
    let cfg = bcfg();
    let stache = run_barnes(MachineConfig::stache(NODES, BS).validated(), &cfg);
    let commute = run_barnes_commute(MachineConfig::commutative(NODES, BS).validated(), &cfg);
    assert_eq!(commute.checksum.to_bits(), stache.checksum.to_bits(), "same physics either way");
    let (ms, mc) = (stache.report.total_stats().msgs_out, commute.report.total_stats().msgs_out);
    assert!(mc < ms, "the bulk exchange must beat the per-block build scan: {mc} vs {ms} messages");
    // The merge traffic itself is visible: every node pushed deltas.
    assert!(commute.report.total_stats().data_bytes_in > 0);
}

#[test]
fn commute_mode_is_batching_invariant() {
    // The gated observables may not depend on the egress aggregation
    // policy (the merge already coalesces; batching must only wrap it).
    let cfg = bcfg();
    let off = run_barnes_commute(
        MachineConfig::commutative(NODES, BS).with_batch(BatchConfig::off()),
        &cfg,
    );
    let on = run_barnes_commute(
        MachineConfig::commutative(NODES, BS).with_batch(BatchConfig::new(64)),
        &cfg,
    );
    assert_eq!(off.checksum.to_bits(), on.checksum.to_bits());
    assert_eq!(
        off.report.total_stats().msgs_out,
        on.report.total_stats().msgs_out,
        "merge message count must not depend on batching"
    );
}

#[test]
fn commute_mode_is_deterministic() {
    let cfg = bcfg();
    let a = run_barnes_commute(MachineConfig::commutative(NODES, BS), &cfg);
    let b = run_barnes_commute(MachineConfig::commutative(NODES, BS), &cfg);
    assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    assert_eq!(a.report.total_stats().msgs_out, b.report.total_stats().msgs_out);
    assert_eq!(a.report.exec_time_ns(), b.report.exec_time_ns(), "virtual time is deterministic");
}
