//! Fault-free e2e invariant: on a perfect fabric, the predictive
//! protocol's pre-sends never race a demand fetch — every push either
//! installs cleanly or is rejected as stale, but `presend_races` (a push
//! arriving while the target is mid-fetch on the same block) must be
//! zero for all three evaluation applications. A nonzero count on a
//! clean fabric means the push-id/epoch handshake regressed.

use prescient_apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_runtime::MachineConfig;

const NODES: usize = 4;
const BS: usize = 32;

fn mcfg() -> MachineConfig {
    MachineConfig::predictive(NODES, BS).validated()
}

#[test]
fn water_fault_free_has_no_presend_races() {
    let cfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    let run = run_water(mcfg(), &cfg);
    let t = run.report.total_stats();
    assert!(t.presend_blocks_out > 0, "water must pre-send at this scale");
    assert_eq!(t.presend_races, 0, "clean fabric must not race: {t:?}");
}

#[test]
fn barnes_fault_free_has_no_presend_races() {
    let cfg = BarnesConfig { n: 192, steps: 2, ..Default::default() };
    let run = run_barnes(mcfg(), &cfg);
    let t = run.report.total_stats();
    assert!(t.presend_blocks_out > 0, "barnes must pre-send at this scale");
    assert_eq!(t.presend_races, 0, "clean fabric must not race: {t:?}");
}

#[test]
fn adaptive_fault_free_has_no_presend_races() {
    let cfg = AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None };
    let (run, _, _) = run_adaptive_full(mcfg(), &cfg);
    let t = run.report.total_stats();
    assert!(t.presend_blocks_out > 0, "adaptive must pre-send at this scale");
    assert_eq!(t.presend_races, 0, "clean fabric must not race: {t:?}");
}
