//! End-to-end application tests at test scale: every application's DSM run
//! matches its sequential reference under both protocols, the predictive
//! protocol reduces misses/remote wait on each, and the baselines behave
//! as modeled.

use prescient_apps::adaptive::{run_adaptive_full, seq_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{
    barnes_final_positions, run_barnes, run_barnes_spmd, seq_barnes, BarnesConfig,
};
use prescient_apps::water::{
    run_splash_water, run_water, seq_water, water_final_positions, WaterConfig,
};
use prescient_runtime::MachineConfig;

const NODES: usize = 4;
const BS: usize = 32;

fn wcfg() -> WaterConfig {
    WaterConfig { n: 64, steps: 4, ..Default::default() }
}

fn bcfg() -> BarnesConfig {
    BarnesConfig { n: 192, steps: 2, ..Default::default() }
}

fn acfg() -> AdaptiveConfig {
    AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None }
}

#[test]
fn water_matches_sequential_under_both_protocols() {
    let cfg = wcfg();
    let expect = seq_water(&cfg);
    for mcfg in [MachineConfig::stache(NODES, BS), MachineConfig::predictive(NODES, BS)] {
        let got = water_final_positions(mcfg.clone(), &cfg);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            for k in 0..3 {
                assert!(
                    (g[k] - e[k]).abs() < 1e-9,
                    "molecule {i} axis {k}: {} vs {} (predictive={})",
                    g[k],
                    e[k],
                    mcfg.protocol.is_predictive()
                );
            }
        }
    }
}

#[test]
fn water_predictive_reduces_misses() {
    let cfg = wcfg();
    let unopt = run_water(MachineConfig::stache(NODES, BS), &cfg);
    let opt = run_water(MachineConfig::predictive(NODES, BS), &cfg);
    assert_eq!(unopt.checksum, opt.checksum, "same physics either way");
    let (mu, mo) = (unopt.report.total_stats().misses(), opt.report.total_stats().misses());
    assert!(mo < mu / 2, "water misses: {mo} vs {mu}");
    assert!(opt.report.mean_breakdown().wait_ns < unopt.report.mean_breakdown().wait_ns);
    assert!(opt.report.total_stats().presend_blocks_out > 0);
}

#[test]
fn splash_water_same_physics_no_presend() {
    let cfg = wcfg();
    let cc = run_water(MachineConfig::stache(NODES, BS), &cfg);
    let splash = run_splash_water(MachineConfig::stache(NODES, BS), &cfg);
    assert!(
        (cc.checksum - splash.checksum).abs() < 1e-6 * cc.checksum.abs().max(1.0),
        "{} vs {}",
        cc.checksum,
        splash.checksum
    );
    assert_eq!(splash.report.total_stats().presend_blocks_out, 0);
    // The shared-memory reduction costs extra remote traffic.
    assert!(
        splash.report.total_stats().misses() > cc.report.total_stats().misses(),
        "splash should communicate more: {} vs {}",
        splash.report.total_stats().misses(),
        cc.report.total_stats().misses()
    );
}

#[test]
fn barnes_matches_sequential_under_both_protocols() {
    let cfg = bcfg();
    let expect = seq_barnes(&cfg);
    for mcfg in [MachineConfig::stache(NODES, BS), MachineConfig::predictive(NODES, BS)] {
        let got = barnes_final_positions(mcfg.clone(), &cfg);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            for k in 0..3 {
                assert!(
                    (g[k] - e[k]).abs() < 1e-9,
                    "body {i} axis {k}: {} vs {} (predictive={})",
                    g[k],
                    e[k],
                    mcfg.protocol.is_predictive()
                );
            }
        }
    }
}

#[test]
fn barnes_predictive_reduces_wait() {
    let cfg = BarnesConfig { n: 192, steps: 3, ..Default::default() };
    let unopt = run_barnes(MachineConfig::stache(NODES, BS), &cfg);
    let opt = run_barnes(MachineConfig::predictive(NODES, BS), &cfg);
    assert_eq!(unopt.checksum, opt.checksum);
    let (mu, mo) = (unopt.report.total_stats().misses(), opt.report.total_stats().misses());
    assert!(mo < mu, "barnes misses: {mo} vs {mu}");
    assert!(
        opt.report.mean_breakdown().wait_ns < unopt.report.mean_breakdown().wait_ns,
        "wait: {} vs {}",
        opt.report.mean_breakdown().wait_ns,
        unopt.report.mean_breakdown().wait_ns
    );
}

#[test]
fn barnes_spmd_baseline_matches_and_presends() {
    let cfg = bcfg();
    let auto = run_barnes(MachineConfig::predictive(NODES, BS), &cfg);
    let spmd = run_barnes_spmd(MachineConfig::predictive(NODES, BS), &cfg);
    assert_eq!(auto.checksum, spmd.checksum, "same physics");
    // The manual write-update schedule pushes data without any recording.
    assert!(spmd.report.total_stats().presend_blocks_out > 0);
    assert_eq!(spmd.report.total_stats().sched_records, 0, "no recording in SPMD mode");
}

#[test]
fn adaptive_matches_sequential_under_both_protocols() {
    let cfg = acfg();
    let seq = seq_adaptive(&cfg);
    for mcfg in [MachineConfig::stache(NODES, BS), MachineConfig::predictive(NODES, BS)] {
        let (_, roots, depths) = run_adaptive_full(mcfg.clone(), &cfg);
        for i in 0..cfg.n {
            for j in 0..cfg.n {
                let k = i * cfg.n + j;
                assert_eq!(
                    depths[k],
                    seq.depths[k],
                    "depth mismatch at ({i},{j}) predictive={}",
                    mcfg.protocol.is_predictive()
                );
                assert!(
                    (roots[k] - seq.roots[k]).abs() < 1e-12,
                    "root mismatch at ({i},{j}): {} vs {}",
                    roots[k],
                    seq.roots[k]
                );
            }
        }
    }
}

#[test]
fn adaptive_predictive_reduces_wait_and_schedule_grows() {
    let cfg = AdaptiveConfig { n: 12, iters: 6, tau: 0.4, max_depth: 2, flush_every: None };
    let (unopt, _, _) = run_adaptive_full(MachineConfig::stache(NODES, BS), &cfg);
    let (opt, _, depths) = run_adaptive_full(MachineConfig::predictive(NODES, BS), &cfg);
    assert!(depths.iter().any(|&d| d > 0), "refinement must happen");
    let (mu, mo) = (unopt.report.total_stats().misses(), opt.report.total_stats().misses());
    assert!(mo < mu, "adaptive misses: {mo} vs {mu}");
    assert!(opt.report.mean_breakdown().wait_ns < unopt.report.mean_breakdown().wait_ns);
    // Incremental growth: schedules recorded entries over the run.
    assert!(opt.report.total_stats().sched_records > 0);
}
