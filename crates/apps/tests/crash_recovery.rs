//! Crash/recovery chaos tests (DESIGN.md §12): inject a crash that
//! destroys a phase's work, recover from the barrier-consistent
//! checkpoint, and require the recovered run to be **bit-identical** to a
//! fault-free run in every gated observable — application checksums and
//! `blocks_moved` (misses + pre-sent blocks). The recovery machinery may
//! not perturb what the paper measures.

use prescient_apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, run_barnes_commute, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_runtime::MachineConfig;
use prescient_stache::RetryConfig;
use prescient_tempest::{BatchConfig, CrashPlan, FaultPlan};
use std::time::Duration;

const NODES: usize = 4;

fn water_cfg() -> WaterConfig {
    WaterConfig { n: 64, steps: 3, ..Default::default() }
}

fn barnes_cfg() -> BarnesConfig {
    BarnesConfig { n: 192, steps: 2, ..Default::default() }
}

fn adaptive_cfg() -> AdaptiveConfig {
    AdaptiveConfig { n: 16, iters: 4, tau: 0.4, max_depth: 2, flush_every: None }
}

fn blocks_moved(run: &AppRun) -> u64 {
    let t = run.report.total_stats();
    t.misses() + t.presend_blocks_out
}

/// Assert the crashed-and-recovered run is bit-identical to the fault-free
/// baseline in the gated observables, and that it actually recovered.
fn assert_recovered(tag: &str, base: &AppRun, run: &AppRun) {
    assert_eq!(
        run.checksum.to_bits(),
        base.checksum.to_bits(),
        "{tag}: recovered checksum must be bit-identical to fault-free \
         ({} vs {})",
        run.checksum,
        base.checksum,
    );
    assert_eq!(
        blocks_moved(run),
        blocks_moved(base),
        "{tag}: recovered blocks_moved must equal fault-free"
    );
    let t = run.report.total_stats();
    assert_eq!(t.recoveries, NODES as u64, "{tag}: every node runs the recovery protocol once");
    assert_eq!(t.replays, NODES as u64, "{tag}: every node replays the destroyed phase once");
    assert!(t.checkpoints > 0, "{tag}: checkpoints were taken");
    assert!(t.checkpoint_bytes > 0, "{tag}: checkpoints carry block data");
    let tb = base.report.total_stats();
    assert_eq!(tb.recoveries, 0, "{tag}: baseline saw no recovery");
}

// ---- crash at a phase boundary, each app, both protocols ----------------

#[test]
fn water_crash_recovers_bit_identically() {
    let cfg = water_cfg();
    let base = run_water(MachineConfig::predictive(NODES, 64).validated(), &cfg);
    // Crash different nodes at different phase executions: first-ever
    // phase, a mid-run phase, and the very last phase (water runs
    // 2 * steps = 6 phase executions).
    for (node, version) in [(0u16, 1u64), (2, 3), (3, 6)] {
        let run = run_water(
            MachineConfig::predictive(NODES, 64)
                .with_crash_plan(CrashPlan::new(node, version))
                .validated(),
            &cfg,
        );
        assert_recovered(&format!("water crash {node}@{version}"), &base, &run);
    }
}

#[test]
fn water_crash_recovers_under_plain_stache() {
    let cfg = water_cfg();
    let base = run_water(MachineConfig::stache(NODES, 64).validated(), &cfg);
    let run = run_water(
        MachineConfig::stache(NODES, 64).with_crash_plan(CrashPlan::new(1, 4)).validated(),
        &cfg,
    );
    assert_recovered("stache water crash 1@4", &base, &run);
}

#[test]
fn barnes_crash_recovers_bit_identically() {
    let cfg = barnes_cfg();
    let base = run_barnes(MachineConfig::predictive(NODES, 64).validated(), &cfg);
    // Barnes runs 4 phases per step; crash in the middle of each step.
    for (node, version) in [(1u16, 2u64), (3, 7)] {
        let run = run_barnes(
            MachineConfig::predictive(NODES, 64)
                .with_crash_plan(CrashPlan::new(node, version))
                .validated(),
            &cfg,
        );
        assert_recovered(&format!("barnes crash {node}@{version}"), &base, &run);
    }
}

#[test]
fn barnes_commute_crash_recovers_bit_identically() {
    // Crash the commutative-merge mode during the build phase itself —
    // the phase whose in-flight deltas the checkpoint must capture.
    // Versions 1 and 5 are the two build-phase executions (4 phases per
    // step), so the destroyed work includes a completed merge window; the
    // replay re-runs the exchange with the restored push ids and epoch,
    // and idempotent re-delivery must leave every gated observable
    // bit-identical.
    let cfg = barnes_cfg();
    let base = run_barnes_commute(MachineConfig::commutative(NODES, 64).validated(), &cfg);
    for (node, version) in [(2u16, 1u64), (1, 5), (3, 7)] {
        let run = run_barnes_commute(
            MachineConfig::commutative(NODES, 64)
                .with_crash_plan(CrashPlan::new(node, version))
                .validated(),
            &cfg,
        );
        assert_recovered(&format!("barnes commute crash {node}@{version}"), &base, &run);
    }
}

#[test]
fn adaptive_crash_recovers_bit_identically() {
    let cfg = adaptive_cfg();
    let base = run_adaptive_full(MachineConfig::predictive(NODES, 64).validated(), &cfg);
    for (node, version) in [(0u16, 2u64), (2, 9)] {
        let run = run_adaptive_full(
            MachineConfig::predictive(NODES, 64)
                .with_crash_plan(CrashPlan::new(node, version))
                .validated(),
            &cfg,
        );
        assert_recovered(&format!("adaptive crash {node}@{version}"), &base.0, &run.0);
        assert_eq!(run.1, base.1, "adaptive roots must match exactly");
        assert_eq!(run.2, base.2, "adaptive depths must match exactly");
    }
}

// ---- crash on top of a faulty fabric ------------------------------------

fn chaos(block: usize) -> MachineConfig {
    MachineConfig::predictive(NODES, block)
        .with_faults(FaultPlan::chaos(0xC0FFEE))
        .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 })
        .validated()
}

#[test]
fn water_crash_recovers_on_chaotic_fabric() {
    // The recovery protocol must also survive a fabric that delays,
    // duplicates, and drops messages: the purge + double-fence drain has
    // to silence the network before the rollback.
    let cfg = water_cfg();
    let base = run_water(chaos(64), &cfg);
    let run = run_water(chaos(64).with_crash_plan(CrashPlan::new(2, 4)), &cfg);
    assert_eq!(
        run.checksum.to_bits(),
        base.checksum.to_bits(),
        "chaotic-fabric recovery must preserve the checksum"
    );
    assert_eq!(blocks_moved(&run), blocks_moved(&base));
    assert_eq!(run.report.total_stats().recoveries, NODES as u64);
}

#[test]
fn adaptive_crash_recovers_on_chaotic_fabric() {
    let cfg = adaptive_cfg();
    let base = run_adaptive_full(chaos(64), &cfg);
    let run = run_adaptive_full(chaos(64).with_crash_plan(CrashPlan::new(1, 5)), &cfg);
    assert_eq!(run.0.checksum.to_bits(), base.0.checksum.to_bits());
    assert_eq!(blocks_moved(&run.0), blocks_moved(&base.0));
    assert_eq!(run.1, base.1);
}

// ---- crash under both egress batching policies --------------------------

#[test]
fn crash_recovery_is_batching_invariant() {
    let cfg = adaptive_cfg();
    for batch in [BatchConfig::off(), BatchConfig::new(64)] {
        let base = run_adaptive_full(MachineConfig::predictive(NODES, 64).with_batch(batch), &cfg);
        let run = run_adaptive_full(
            MachineConfig::predictive(NODES, 64)
                .with_batch(batch)
                .with_crash_plan(CrashPlan::new(3, 6)),
            &cfg,
        );
        assert_eq!(
            run.0.checksum.to_bits(),
            base.0.checksum.to_bits(),
            "batch={batch:?}: checksum must survive recovery"
        );
        assert_eq!(blocks_moved(&run.0), blocks_moved(&base.0), "batch={batch:?}");
    }
}

// ---- randomized crash point (proptest-style) ----------------------------

/// A tiny deterministic LCG so the sweep needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn randomized_crash_points_recover_across_all_apps() {
    // Random (node, phase-execution) crash points under a random fault
    // seed, for all three applications at small scale. Every combination
    // must recover to the bit-identical fault-free result.
    let mut rng = Lcg(0x5eed_cafe);
    let wcfg = water_cfg();
    let bcfg = barnes_cfg();
    let acfg = adaptive_cfg();
    let water_base = run_water(MachineConfig::predictive(NODES, 64).validated(), &wcfg);
    let barnes_base = run_barnes(MachineConfig::predictive(NODES, 64).validated(), &bcfg);
    let adaptive_base = run_adaptive_full(MachineConfig::predictive(NODES, 64).validated(), &acfg);

    for round in 0..3 {
        let node = (rng.next() % NODES as u64) as u16;
        // Per-app phase-execution counts: water 2/step, barnes 4/step,
        // adaptive 3/iter.
        let app = rng.next() % 3;
        match app {
            0 => {
                let version = 1 + rng.next() % (2 * wcfg.steps as u64);
                let run = run_water(
                    MachineConfig::predictive(NODES, 64)
                        .with_crash_plan(CrashPlan::new(node, version))
                        .validated(),
                    &wcfg,
                );
                assert_recovered(
                    &format!("round {round}: water {node}@{version}"),
                    &water_base,
                    &run,
                );
            }
            1 => {
                let version = 1 + rng.next() % (4 * bcfg.steps as u64);
                let run = run_barnes(
                    MachineConfig::predictive(NODES, 64)
                        .with_crash_plan(CrashPlan::new(node, version))
                        .validated(),
                    &bcfg,
                );
                assert_recovered(
                    &format!("round {round}: barnes {node}@{version}"),
                    &barnes_base,
                    &run,
                );
            }
            _ => {
                let version = 1 + rng.next() % (3 * acfg.iters as u64);
                let run = run_adaptive_full(
                    MachineConfig::predictive(NODES, 64)
                        .with_crash_plan(CrashPlan::new(node, version))
                        .validated(),
                    &acfg,
                );
                assert_recovered(
                    &format!("round {round}: adaptive {node}@{version}"),
                    &adaptive_base.0,
                    &run.0,
                );
            }
        }
    }
}

// ---- paper scale --------------------------------------------------------

/// Paper-scale recovery smoke: Adaptive at the paper's mesh (128×128, 32
/// nodes), crashed mid-run, must recover to the bit-identical fault-free
/// result. Expensive — run explicitly (the `chaos-recovery` CI job does).
#[test]
#[ignore = "paper scale; run explicitly or via the chaos-recovery CI job"]
fn paper_scale_adaptive_crash_smoke() {
    let cfg = AdaptiveConfig { iters: 20, ..Default::default() };
    let mcfg = MachineConfig::predictive(32, 128);
    let base = run_adaptive_full(mcfg.clone(), &cfg);
    let run = run_adaptive_full(mcfg.with_crash_plan(CrashPlan::new(17, 31)), &cfg);
    assert_eq!(run.0.checksum.to_bits(), base.0.checksum.to_bits());
    assert_eq!(blocks_moved(&run.0), blocks_moved(&base.0));
    assert_eq!(run.1, base.1);
    assert_eq!(run.2, base.2);
    assert_eq!(run.0.report.total_stats().recoveries, 32);
}
