//! Property test for the pre-send ↔ recall interleaving (satellite of the
//! hot-path PR): random programs that alternate pre-send rounds of a
//! manual schedule with demand writes (which recall or invalidate the
//! pushed copies) and demand reads must always observe the values a
//! sequential model predicts, and must leave the machine coherent.
//!
//! The concurrent stress twin lives in `presend_race.rs`; this file
//! explores many orderings of the same ingredients deterministically, so a
//! shrunken counterexample is replayable.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver};
use prescient_core::manual::ManualEntry;
use prescient_core::presend::presend;
use prescient_core::{DegradeConfig, Predictive, PredictiveConfig};
use prescient_stache::{check_coherence, fetch, spawn_protocol, Msg, NodeShared, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{CostModel, GAddr, GlobalLayout, NodeId, NodeSet, Prim};
use proptest::prelude::*;

const NODES: usize = 4;
const BLOCKS: usize = 6;

/// One step of the interleaved program. All blocks are homed at node 0,
/// which also runs the pre-send rounds.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Node 0 executes one pre-send window of the manual schedule.
    Presend,
    /// `(block index, writer node, value)` — a demand write; if the block
    /// was pre-sent earlier, this recalls/invalidates the pushed copies.
    Write(usize, NodeId, u64),
    /// `(block index, reader node)` — must observe the model's value.
    Read(usize, NodeId),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Presend),
        3 => (0..BLOCKS, 1..NODES as NodeId, any::<u64>()).prop_map(|(b, w, v)| Op::Write(b, w, v)),
        3 => (0..BLOCKS, 0..NODES as NodeId).prop_map(|(b, r)| Op::Read(b, r)),
    ]
}

struct TestNode {
    shared: Arc<NodeShared>,
    pred: Arc<Predictive>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
}

impl TestNode {
    fn read_u64(&mut self, addr: GAddr) -> u64 {
        loop {
            let mut buf = [0u8; 8];
            let r = self.shared.mem.lock().read_in_block(addr, &mut buf);
            match r {
                Ok(()) => return u64::load(&buf),
                Err(e) => {
                    fetch(&self.shared, &self.wake_rx, e.fault().block, false, &mut self.stash);
                }
            }
        }
    }

    fn write_u64(&mut self, addr: GAddr, v: u64) {
        let mut buf = [0u8; 8];
        v.store(&mut buf);
        loop {
            let r = self.shared.mem.lock().write_in_block(addr, &buf);
            match r {
                Ok(()) => return,
                Err(e) => {
                    fetch(&self.shared, &self.wake_rx, e.fault().block, true, &mut self.stash);
                }
            }
        }
    }
}

fn build_machine() -> (Vec<TestNode>, Vec<JoinHandle<()>>) {
    let layout = GlobalLayout::new(NODES, 32);
    let cfg = PredictiveConfig {
        degrade: DegradeConfig { enabled: false, ..DegradeConfig::default() },
        ..PredictiveConfig::default()
    };
    let mut tns = Vec::new();
    let mut joins = Vec::new();
    for ep in Fabric::new::<Msg>(NODES) {
        let (wake_tx, wake_rx) = unbounded();
        let shared =
            Arc::new(NodeShared::new(layout, CostModel::default(), ep.net().clone(), wake_tx));
        let pred = Arc::new(Predictive::new(cfg));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&pred) as _));
        tns.push(TestNode { shared, pred, wake_rx, stash: Vec::new() });
    }
    (tns, joins)
}

fn run_program(ops: Vec<Op>) {
    let (mut tns, joins) = build_machine();
    let addrs: Vec<GAddr> = {
        let mut mem = tns[0].shared.mem.lock();
        (0..BLOCKS).map(|_| mem.alloc(32, 32)).collect()
    };
    let layout = tns[0].shared.layout;
    // The manual schedule pushes read-only copies of every block to nodes
    // 1 and 2 each window (node 3 stays a demand-only consumer).
    tns[0].pred.install_manual(
        1,
        addrs.iter().map(|a| {
            (layout.block_of(*a), ManualEntry::Readers([1u16, 2].into_iter().collect::<NodeSet>()))
        }),
    );

    let mut model = [0u64; BLOCKS];
    for op in ops {
        match op {
            Op::Presend => {
                let tn = &mut tns[0];
                presend(&tn.pred, &tn.shared, &tn.wake_rx, &mut tn.stash, 1);
            }
            Op::Write(b, w, v) => {
                tns[w as usize].write_u64(addrs[b], v);
                model[b] = v;
            }
            Op::Read(b, r) => {
                let got = tns[r as usize].read_u64(addrs[b]);
                assert_eq!(
                    got, model[b],
                    "node {r} read stale data from block {b} (pre-send leaked a stale copy)"
                );
            }
        }
    }

    // Quiesced (ops are sequential; every push was acknowledged before the
    // pre-send returned): the invariants must hold.
    let shareds: Vec<Arc<NodeShared>> = tns.iter().map(|t| Arc::clone(&t.shared)).collect();
    let violations = check_coherence(&shareds);
    assert!(violations.is_empty(), "coherence violations: {violations:#?}");

    for tn in &tns {
        tn.shared.send(tn.shared.me, Msg::Shutdown);
    }
    for j in joins {
        j.join().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random interleavings of pre-send rounds, recalls (via demand
    /// writes), and demand reads preserve sequential semantics and every
    /// coherence invariant.
    #[test]
    fn presend_interleaved_with_recalls(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_program(ops);
    }
}
