//! End-to-end tests of the predictive protocol on a live emulated machine:
//! schedules are recorded during iteration 1 and pre-sends eliminate misses
//! from iteration 2 on, for producer–consumer and migratory patterns;
//! conflicts are skipped; incremental growth and flush behave as §3.3
//! describes.
//!
//! Test programs follow the paper's phase discipline: a datum is produced
//! in one parallel phase and consumed in another (writing and reading the
//! same block within one phase instance is exactly the *conflict* case).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver};
use prescient_core::manual::ManualEntry;
use prescient_core::presend::presend;
use prescient_core::{DegradeConfig, Predictive, PredictiveConfig};
use prescient_stache::{fetch, spawn_protocol, Msg, NodeShared, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{CostModel, NodeId, NodeSet};
use prescient_tempest::{GAddr, GlobalLayout, Prim, VBarrier};

struct TestNode {
    shared: Arc<NodeShared>,
    pred: Arc<Predictive>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
    barrier: Arc<VBarrier>,
}

impl TestNode {
    fn read_u64(&mut self, addr: GAddr) -> (u64, u32) {
        let mut faults = 0;
        loop {
            let mut buf = [0u8; 8];
            let r = self.shared.mem.lock().read_in_block(addr, &mut buf);
            match r {
                Ok(()) => return (u64::load(&buf), faults),
                Err(f) => {
                    faults += 1;
                    fetch(&self.shared, &self.wake_rx, f.fault().block, false, &mut self.stash);
                }
            }
        }
    }

    fn write_u64(&mut self, addr: GAddr, v: u64) -> u32 {
        let mut faults = 0;
        let mut buf = [0u8; 8];
        v.store(&mut buf);
        loop {
            let r = self.shared.mem.lock().write_in_block(addr, &buf);
            match r {
                Ok(()) => return faults,
                Err(f) => {
                    faults += 1;
                    fetch(&self.shared, &self.wake_rx, f.fault().block, true, &mut self.stash);
                }
            }
        }
    }

    /// The runtime's `phase_begin` directive: pre-send, arm recording,
    /// stability barrier (arming precedes the barrier so every home is
    /// recording before any node can fault on this instance).
    fn phase_begin(&mut self, phase: u32) {
        self.barrier.wait(0);
        presend(&self.pred, &self.shared, &self.wake_rx, &mut self.stash, phase);
        self.pred.arm(phase);
        self.barrier.wait(0);
    }

    /// The runtime's `phase_end` directive: barrier (all in-phase
    /// requests recorded), disarm, barrier (all nodes disarmed).
    fn phase_end(&mut self) {
        self.barrier.wait(0);
        self.pred.end_phase();
        self.barrier.wait(0);
    }
}

struct TestMachine {
    nodes: Vec<TestNode>,
    joins: Vec<JoinHandle<()>>,
}

fn machine(n: usize, block_size: usize) -> TestMachine {
    machine_cfg(n, block_size, PredictiveConfig::default())
}

fn machine_cfg(n: usize, block_size: usize, cfg: PredictiveConfig) -> TestMachine {
    let layout = GlobalLayout::new(n, block_size);
    let cost = CostModel::default();
    let barrier = Arc::new(VBarrier::new(n));
    let mut nodes = Vec::new();
    let mut joins = Vec::new();
    for ep in Fabric::new::<Msg>(n) {
        let (wake_tx, wake_rx) = unbounded();
        let shared = Arc::new(NodeShared::new(layout, cost, ep.net().clone(), wake_tx));
        let pred = Arc::new(Predictive::new(cfg));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&pred) as _));
        nodes.push(TestNode {
            shared,
            pred,
            wake_rx,
            stash: Vec::new(),
            barrier: Arc::clone(&barrier),
        });
    }
    TestMachine { nodes, joins }
}

impl TestMachine {
    fn shutdown(self) {
        for n in &self.nodes {
            n.shared.send(n.shared.me, Msg::Shutdown);
        }
        for j in self.joins {
            j.join().unwrap();
        }
    }

    /// Run `f(node_id, node)` on every node concurrently, SPMD style.
    fn spmd<F>(self, f: F) -> TestMachine
    where
        F: Fn(NodeId, &mut TestNode) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let joins = self.joins;
        let handles: Vec<_> = self
            .nodes
            .into_iter()
            .map(|mut tn| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    f(tn.shared.me, &mut tn);
                    tn
                })
            })
            .collect();
        let nodes = handles.into_iter().map(|h| h.join().unwrap()).collect();
        TestMachine { nodes, joins }
    }
}

const W: u32 = 1; // producer phase
const R: u32 = 2; // consumer phase

/// Producer–consumer across two phases: node 1 writes a value homed at
/// node 0 in phase W; node 2 reads it in phase R. After the recording
/// iteration, pre-sends must make both the write and the read hit locally.
#[test]
fn producer_consumer_becomes_local_after_recording() {
    let m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, u32, u32)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..5u64 {
            let mut wf = 0;
            let mut rf = 0;
            tn.phase_begin(W);
            if me == 1 {
                wf = tn.write_u64(addr, 100 + iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            if me == 2 {
                let (v, f) = tn.read_u64(addr);
                assert_eq!(v, 100 + iter);
                rf = f;
            }
            tn.phase_end();
            if me == 1 || me == 2 {
                l2.lock().push((iter, wf, rf));
            }
        }
    });

    let log = log.lock();
    for &(iter, wf, rf) in log.iter() {
        if iter >= 1 {
            assert_eq!(wf, 0, "producer write must hit after pre-send (iter {iter})");
            assert_eq!(rf, 0, "consumer read must hit after pre-send (iter {iter})");
        }
    }
    let iter0_faults: u32 = log.iter().filter(|e| e.0 == 0).map(|e| e.1 + e.2).sum();
    assert!(iter0_faults >= 2, "recording iteration must fault");
    // No conflicts: production and consumption are in distinct phases.
    drop(log);
    assert_eq!(m.nodes[0].pred.conflicts(W), 0);
    assert_eq!(m.nodes[0].pred.conflicts(R), 0);
    m.shutdown();
}

/// Read+write of the same block in one phase instance marks it conflict;
/// the protocol then takes no pre-send action and the faults persist
/// (correct, just unoptimized — §3.4).
#[test]
fn conflict_blocks_get_no_action() {
    let m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let fault_log: Arc<parking_lot::Mutex<Vec<u32>>> = Arc::new(parking_lot::Mutex::new(vec![]));
    let fl = Arc::clone(&fault_log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..4u64 {
            tn.phase_begin(9);
            // Node 1 writes and node 2 reads within the SAME phase
            // instance (serialized by an internal barrier so values are
            // deterministic, but one phase as far as the schedule goes).
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.barrier.wait(0);
            if me == 2 {
                let (_, f) = tn.read_u64(addr);
                if iter > 0 {
                    fl.lock().push(f);
                }
            }
            tn.phase_end();
        }
    });

    assert_eq!(m.nodes[0].pred.conflicts(9), 1, "home must mark the block conflict");
    let faults = fault_log.lock();
    assert!(faults.iter().all(|&f| f > 0), "conflict block must not be pre-sent: {faults:?}");
    drop(faults);
    m.shutdown();
}

/// Incremental growth: a reader that joins at iteration 2 faults once and
/// is served by pre-sends from iteration 3 on.
#[test]
fn incremental_schedule_adds_new_readers() {
    let m = machine(4, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, NodeId, u32)>>> =
        Arc::new(parking_lot::Mutex::new(vec![]));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..6u64 {
            tn.phase_begin(W);
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            let late_joiner = me == 3 && iter >= 2;
            if me == 2 || late_joiner {
                let (v, f) = tn.read_u64(addr);
                assert_eq!(v, iter);
                l2.lock().push((iter, me, f));
            }
            tn.phase_end();
        }
    });

    let log = log.lock();
    for &(iter, me, f) in log.iter() {
        if me == 2 && iter >= 1 {
            assert_eq!(f, 0, "established reader faults at iter {iter}");
        }
        if me == 3 {
            match iter {
                2 => assert_eq!(f, 1, "late joiner must fault once on arrival"),
                i if i >= 3 => assert_eq!(f, 0, "late joiner served by pre-send at iter {i}"),
                _ => {}
            }
        }
    }
    drop(log);
    m.shutdown();
}

/// Flushing a schedule reverts the phase to fault-and-record behavior.
#[test]
fn flush_rebuilds_schedule() {
    let m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, u32)>>> = Arc::new(parking_lot::Mutex::new(vec![]));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..6u64 {
            if iter == 3 {
                tn.pred.flush(W);
                tn.pred.flush(R);
            }
            tn.phase_begin(W);
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            if me == 2 {
                let (_, f) = tn.read_u64(addr);
                l2.lock().push((iter, f));
            }
            tn.phase_end();
        }
    });

    let mut entries = log.lock().clone();
    entries.sort_unstable();
    let faults: Vec<u32> = entries.into_iter().map(|(_, f)| f).collect();
    // iter 0: fault (cold). iters 1,2: pre-sent. iter 3: fault again
    // (flushed). iters 4,5: pre-sent again.
    assert_eq!(faults, vec![1, 0, 0, 1, 0, 0]);
    m.shutdown();
}

/// Contiguous blocks pushed to one reader coalesce into fewer bulk
/// messages; disabling coalescing sends one message per block.
#[test]
fn coalescing_reduces_message_count() {
    for coalesce in [true, false] {
        let cfg = PredictiveConfig { coalesce, ..Default::default() };
        let m = machine_cfg(2, 32, cfg);
        // 16 contiguous blocks homed at node 0, hand-scheduled for reader 1
        // (the SPMD/manual-protocol path also covers install_manual here).
        let base = m.nodes[0].shared.mem.lock().alloc(16 * 32, 32);
        let entries: Vec<_> = (0..16u64)
            .map(|i| (base.add(i * 32).block(32), ManualEntry::Readers(NodeSet::single(1))))
            .collect();
        m.nodes[0].pred.install_manual(4, entries);

        let m = m.spmd(move |me, tn| {
            tn.phase_begin(4);
            if me == 1 {
                for i in 0..16u64 {
                    let (_, f) = tn.read_u64(base.add(i * 32));
                    assert_eq!(f, 0, "manually scheduled block {i} must be pre-sent");
                }
            }
            tn.phase_end();
        });

        let s0 = m.nodes[0].shared.stats.snapshot();
        assert_eq!(s0.presend_blocks_out, 16, "coalesce={coalesce}");
        if coalesce {
            assert_eq!(s0.presend_msgs_out, 1, "one bulk message for the run");
        } else {
            assert_eq!(s0.presend_msgs_out, 16, "one message per block without coalescing");
        }
        let s1 = m.nodes[1].shared.stats.snapshot();
        assert_eq!(s1.presend_blocks_in, 16);
        m.shutdown();
    }
}

/// The §3.4 optional policy: with conflict anticipation enabled, a
/// write-then-read conflict block is pre-granted toward its first stable
/// state (the writer), so the writer stops faulting while the reader
/// still pays demand misses.
#[test]
fn conflict_anticipation_pregrants_first_state() {
    let cfg = PredictiveConfig { anticipate_conflicts: true, ..Default::default() };
    let m = machine_cfg(3, 32, cfg);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, u32, u32)>>> =
        Arc::new(parking_lot::Mutex::new(vec![]));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..5u64 {
            tn.phase_begin(9);
            // Writer first, reader second, same phase instance: conflict.
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.barrier.wait(0);
            let mut rf = 0;
            if me == 2 {
                let (v, f) = tn.read_u64(addr);
                assert_eq!(v, iter);
                rf = f;
            }
            tn.phase_end();
            if me == 1 || me == 2 {
                // write faults are observed via a second write probe: record reader faults only
                l2.lock().push((iter, me as u32, rf));
            }
        }
    });

    assert_eq!(m.nodes[0].pred.conflicts(9), 1, "block is conflict-marked");
    // The writer is pre-granted: its writes hit from iteration 1 on. We
    // verify through the stats: write misses stop accumulating.
    let s1 = m.nodes[1].shared.stats.snapshot();
    assert!(
        s1.write_misses <= 2,
        "writer pre-granted under anticipation: {} write misses",
        s1.write_misses
    );
    // The reader still faults every iteration (it is on the losing side of
    // the anticipated state).
    let log = log.lock();
    let reader_faults: u32 = log.iter().filter(|e| e.1 == 2).map(|e| e.2).sum();
    assert!(reader_faults >= 4, "reader keeps faulting: {reader_faults}");
    drop(log);
    m.shutdown();
}

/// Migratory pattern: ownership of a block moves to the recorded writer
/// ahead of its write.
#[test]
fn migratory_write_is_present_to_writer() {
    let m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, u32)>>> = Arc::new(parking_lot::Mutex::new(vec![]));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..4u64 {
            tn.phase_begin(3);
            if me == 2 {
                // Node 2 increments the remotely homed counter each
                // iteration (migratory/owner-compute pattern).
                let (v, _) = tn.read_u64(addr);
                let f = tn.write_u64(addr, v + 1);
                l2.lock().push((iter, f));
            }
            tn.phase_end();
        }
    });

    let log = log.lock();
    for &(iter, f) in log.iter() {
        if iter >= 1 {
            assert_eq!(f, 0, "write must be pre-granted at iter {iter}");
        }
    }
    drop(log);
    let mut n0 = m.nodes.into_iter().next().unwrap();
    let (v, _) = n0.read_u64(addr);
    assert_eq!(v, 4);
    n0.shared.send(0, Msg::Shutdown);
    n0.shared.send(1, Msg::Shutdown);
    n0.shared.send(2, Msg::Shutdown);
}

/// The redundant pre-send diagnostic: a reader recorded once but absent in
/// later iterations keeps receiving (unused) copies, because schedules do
/// not track deletions (§3.3).
#[test]
fn deletions_are_not_tracked() {
    let m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let m = m.spmd(move |me, tn| {
        for iter in 0..4u64 {
            tn.phase_begin(W);
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            if me == 2 && iter == 0 {
                // Reads only in the first iteration, then never again.
                tn.read_u64(addr);
            }
            tn.phase_end();
        }
    });

    // Node 2 received pre-sent copies for iterations it never read in.
    let s2 = m.nodes[2].shared.stats.snapshot();
    assert!(
        s2.presend_blocks_in >= 2,
        "stale reader keeps receiving copies: {}",
        s2.presend_blocks_in
    );
    let unused = m.nodes[2].shared.mem.lock().unused_presends();
    assert_eq!(unused, 1, "the last pre-sent copy was never read");
    m.shutdown();
}

/// Graceful degradation: a reader recorded once but never returning makes
/// every later pre-send useless. After `consecutive` bad instances the
/// home flushes the phase's schedule and stops recording for
/// `backoff_instances` (bounding the waste the test above diagnoses);
/// when the backoff lapses, a returning reader is re-recorded and served
/// by pre-sends again.
#[test]
fn useless_presends_trigger_degradation_then_rearm() {
    let m = machine(3, 32); // degradation on by default: 50% / 3 bad / backoff 4
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let log: Arc<parking_lot::Mutex<Vec<(u64, u32)>>> = Arc::new(parking_lot::Mutex::new(vec![]));
    let l2 = Arc::clone(&log);

    let m = m.spmd(move |me, tn| {
        for iter in 0..13u64 {
            tn.phase_begin(W);
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            if me == 2 && (iter == 0 || iter >= 10) {
                let (v, f) = tn.read_u64(addr);
                assert_eq!(v, iter);
                l2.lock().push((iter, f));
            }
            tn.phase_end();
        }
    });

    // Exactly one degradation event at the home, resolved by the end; the
    // healthy producer phase is untouched.
    assert_eq!(m.nodes[0].pred.degrade_events(R), 1, "R must degrade once");
    assert!(!m.nodes[0].pred.is_degraded(R), "backoff must have lapsed");
    assert_eq!(m.nodes[0].pred.degrade_events(W), 0, "W stays healthy");

    let mut entries = log.lock().clone();
    entries.sort_unstable();
    let faults: Vec<u32> = entries.into_iter().map(|(_, f)| f).collect();
    // iter 0: cold fault, recorded. iter 10: the schedule was flushed by
    // degradation, so the returning reader faults once and is re-recorded.
    // iters 11, 12: pre-sent again.
    assert_eq!(faults, vec![1, 1, 0, 0]);

    // The useless stream was cut: without degradation the reader would be
    // pushed a copy in each of iters 1..=12.
    let s2 = m.nodes[2].shared.stats.snapshot();
    assert!(s2.presend_blocks_in <= 7, "waste must be bounded: {} pushes", s2.presend_blocks_in);
    let s0 = m.nodes[0].shared.stats.snapshot();
    assert!(s0.presend_useless >= 3, "home must have observed the useless acks");
    assert_eq!(s0.degrade_events, 1);
    m.shutdown();
}

/// Baseline for the degradation test: with the policy disabled, the
/// (correct but wasteful) push stream continues for the whole run.
#[test]
fn degradation_disabled_keeps_pushing() {
    let cfg = PredictiveConfig {
        degrade: DegradeConfig { enabled: false, ..Default::default() },
        ..Default::default()
    };
    let m = machine_cfg(3, 32, cfg);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);

    let m = m.spmd(move |me, tn| {
        for iter in 0..11u64 {
            tn.phase_begin(W);
            if me == 1 {
                tn.write_u64(addr, iter);
            }
            tn.phase_end();
            tn.phase_begin(R);
            if me == 2 && iter == 0 {
                tn.read_u64(addr);
            }
            tn.phase_end();
        }
    });

    assert_eq!(m.nodes[0].pred.degrade_events(R), 0);
    let s2 = m.nodes[2].shared.stats.snapshot();
    assert!(s2.presend_blocks_in >= 9, "stream never stops: {} pushes", s2.presend_blocks_in);
    m.shutdown();
}
