//! Property tests on communication schedules: conflict marking, action
//! selection, incremental growth monotonicity, and the coalescing
//! grouping invariants.

use prescient_core::schedule::{Action, PhaseSchedule};
use prescient_tempest::{BlockId, NodeId, NodeSet};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Ev {
    Read(u64, NodeId),
    Write(u64, NodeId),
    NextIter,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u64..8, 0u16..8).prop_map(|(b, n)| Ev::Read(b, n)),
        (0u64..8, 0u16..8).prop_map(|(b, n)| Ev::Write(b, n)),
        Just(Ev::NextIter),
    ]
}

proptest! {
    /// A block is conflict-marked iff some single iteration saw both a
    /// read and a write of it.
    #[test]
    fn conflict_iff_same_iteration_read_and_write(evs in proptest::collection::vec(ev_strategy(), 0..60)) {
        let mut sched = PhaseSchedule::default();
        sched.cur_iter = 1;
        let mut iter = 1u64;
        use std::collections::HashMap;
        let mut per_iter: HashMap<(u64, u64), (bool, bool)> = HashMap::new();
        for ev in &evs {
            match ev {
                Ev::Read(b, n) => {
                    sched.record_read(BlockId(*b), *n);
                    per_iter.entry((*b, iter)).or_default().0 = true;
                }
                Ev::Write(b, n) => {
                    sched.record_write(BlockId(*b), *n);
                    per_iter.entry((*b, iter)).or_default().1 = true;
                }
                Ev::NextIter => {
                    iter += 1;
                    sched.cur_iter = iter;
                }
            }
        }
        for b in 0..8u64 {
            let expect_conflict = (1..=iter).any(|it| {
                matches!(per_iter.get(&(b, it)), Some((true, true)))
            });
            let got = sched.entries.get(&BlockId(b)).map(|e| e.conflict).unwrap_or(false);
            prop_assert_eq!(got, expect_conflict, "block {}", b);
        }
    }

    /// Readers only accumulate (no deletions), and every recorded reader
    /// stays in the entry forever.
    #[test]
    fn readers_grow_monotonically(evs in proptest::collection::vec(ev_strategy(), 0..60)) {
        let mut sched = PhaseSchedule::default();
        sched.cur_iter = 1;
        let mut seen: std::collections::HashMap<u64, std::collections::BTreeSet<NodeId>> =
            Default::default();
        for ev in &evs {
            match ev {
                Ev::Read(b, n) => {
                    sched.record_read(BlockId(*b), *n);
                    seen.entry(*b).or_default().insert(*n);
                }
                Ev::Write(b, n) => sched.record_write(BlockId(*b), *n),
                Ev::NextIter => sched.cur_iter += 1,
            }
            for (b, readers) in &seen {
                let e = sched.entries[&BlockId(*b)];
                for r in readers {
                    prop_assert!(e.readers.contains(*r), "reader {} lost from block {}", r, b);
                }
            }
        }
    }

    /// The pre-send action is Conflict exactly for conflict entries, Write
    /// iff the most recent recording was a write, Read otherwise.
    #[test]
    fn action_follows_recency(evs in proptest::collection::vec(ev_strategy(), 1..60)) {
        let mut sched = PhaseSchedule::default();
        sched.cur_iter = 1;
        let mut last_kind: std::collections::HashMap<u64, (bool, u64, u64)> = Default::default();
        let mut iter = 1u64;
        for ev in &evs {
            match ev {
                Ev::Read(b, n) => {
                    sched.record_read(BlockId(*b), *n);
                    let e = last_kind.entry(*b).or_insert((false, 0, 0));
                    e.1 = iter; // read_iter
                }
                Ev::Write(b, n) => {
                    sched.record_write(BlockId(*b), *n);
                    let e = last_kind.entry(*b).or_insert((false, 0, 0));
                    e.0 = true; // wrote at least once
                    e.2 = iter; // write_iter
                }
                Ev::NextIter => {
                    iter += 1;
                    sched.cur_iter = iter;
                }
            }
        }
        for (b, (wrote, read_iter, write_iter)) in last_kind {
            let e = sched.entries[&BlockId(b)];
            if e.conflict {
                prop_assert_eq!(e.action(), Action::Conflict);
            } else if wrote && write_iter >= read_iter {
                prop_assert_eq!(e.action(), Action::Write, "block {}", b);
            } else {
                prop_assert_eq!(e.action(), Action::Read, "block {}", b);
            }
        }
    }

    /// sorted_entries is sorted, complete, and duplicate-free.
    #[test]
    fn sorted_entries_is_a_permutation(evs in proptest::collection::vec(ev_strategy(), 0..60)) {
        let mut sched = PhaseSchedule::default();
        sched.cur_iter = 1;
        for ev in &evs {
            match ev {
                Ev::Read(b, n) => sched.record_read(BlockId(*b), *n),
                Ev::Write(b, n) => sched.record_write(BlockId(*b), *n),
                Ev::NextIter => sched.cur_iter += 1,
            }
        }
        let sorted = sched.sorted_entries();
        prop_assert_eq!(sorted.len(), sched.entries.len());
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "strictly ascending blocks");
        }
    }

    /// Expanding the run-length-encoded `replay` block-by-block yields
    /// exactly the normalized `sorted_entries` walk (what the pre-send
    /// passes consumed before compaction), and the encoding is maximal:
    /// no two adjacent runs could have merged.
    #[test]
    fn replay_expands_to_sorted_walk(
        evs in proptest::collection::vec(ev_strategy(), 0..120),
        anticipate in any::<bool>(),
    ) {
        let mut sched = PhaseSchedule::default();
        sched.cur_iter = 1;
        for ev in &evs {
            match ev {
                Ev::Read(b, n) => sched.record_read(BlockId(*b), *n),
                Ev::Write(b, n) => sched.record_write(BlockId(*b), *n),
                Ev::NextIter => sched.cur_iter += 1,
            }
        }
        let normalize = |e: &prescient_core::schedule::ScheduleEntry| {
            let action = e.action_with(anticipate);
            let readers = if action == Action::Read { e.readers } else { NodeSet::EMPTY };
            let writer = if action == Action::Write { e.writer } else { None };
            (action, readers, writer)
        };
        let reference: Vec<_> = sched
            .sorted_entries()
            .into_iter()
            .map(|(b, e)| {
                let (action, readers, writer) = normalize(&e);
                (b.0, action, readers, writer)
            })
            .collect();
        let runs = sched.replay(anticipate);
        let expanded: Vec<_> = runs
            .iter()
            .flat_map(|r| r.blocks().map(move |b| (b.0, r.action, r.readers, r.writer)))
            .collect();
        prop_assert_eq!(&expanded, &reference, "replay must expand to the per-block walk");
        for w in runs.windows(2) {
            let mergeable = w[0].first.0 + w[0].len == w[1].first.0
                && w[0].action == w[1].action
                && w[0].readers == w[1].readers
                && w[0].writer == w[1].writer;
            prop_assert!(!mergeable, "adjacent runs must not be mergeable (maximal RLE)");
        }
    }
}
