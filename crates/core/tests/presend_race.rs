//! Regression tests for the pass-1 → pass-2 pre-send race (satellite of
//! the hot-path PR): a push group whose targets' directory state changes
//! between pass 1 (recording/teardown) and pass 2 (send) must not pre-send
//! a copy to a node while another node holds an exclusive one.
//!
//! The seed code `debug_assert!`ed that pass 2 never sees a busy entry and
//! then overwrote the directory state unconditionally — under a concurrent
//! demand request (reachable via a delayed request on a faulty fabric, or
//! any driver that pre-sends outside the barrier-delimited window) that
//! either aborted a debug build or corrupted an in-flight round's state in
//! release. Pass 2 now revalidates every push under the directory lock and
//! drops stale ones (`presend_aborted`).
//!
//! The proptest companion (`proptest_presend_race.rs`) interleaves recalls
//! with pre-send rounds sequentially under a model; this file stresses the
//! genuinely concurrent interleaving.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver};
use prescient_core::manual::ManualEntry;
use prescient_core::presend::presend;
use prescient_core::{DegradeConfig, Predictive, PredictiveConfig};
use prescient_stache::{check_coherence, fetch, spawn_protocol, Msg, NodeShared, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{CostModel, GAddr, GlobalLayout, NodeSet, Prim};

struct TestNode {
    shared: Arc<NodeShared>,
    pred: Arc<Predictive>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
}

impl TestNode {
    fn read_u64(&mut self, addr: GAddr) -> u64 {
        loop {
            let mut buf = [0u8; 8];
            let r = self.shared.mem.lock().read_in_block(addr, &mut buf);
            match r {
                Ok(()) => return u64::load(&buf),
                Err(e) => {
                    fetch(&self.shared, &self.wake_rx, e.fault().block, false, &mut self.stash);
                }
            }
        }
    }

    fn write_u64(&mut self, addr: GAddr, v: u64) {
        let mut buf = [0u8; 8];
        v.store(&mut buf);
        loop {
            let r = self.shared.mem.lock().write_in_block(addr, &buf);
            match r {
                Ok(()) => return,
                Err(e) => {
                    fetch(&self.shared, &self.wake_rx, e.fault().block, true, &mut self.stash);
                }
            }
        }
    }
}

fn machine(n: usize, block_size: usize) -> (Vec<TestNode>, Vec<JoinHandle<()>>) {
    let layout = GlobalLayout::new(n, block_size);
    let cfg = PredictiveConfig {
        // Keep pushing every round: degradation would flush the manual
        // schedule once the rogue writer makes most pushes useless.
        degrade: DegradeConfig { enabled: false, ..DegradeConfig::default() },
        ..PredictiveConfig::default()
    };
    let mut nodes = Vec::new();
    let mut joins = Vec::new();
    for ep in Fabric::new::<Msg>(n) {
        let (wake_tx, wake_rx) = unbounded();
        let shared =
            Arc::new(NodeShared::new(layout, CostModel::default(), ep.net().clone(), wake_tx));
        let pred = Arc::new(Predictive::new(cfg));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::clone(&pred) as _));
        nodes.push(TestNode { shared, pred, wake_rx, stash: Vec::new() });
    }
    (nodes, joins)
}

/// Node 0 (home) runs pre-send rounds for a manual schedule while node 1
/// hammers the same blocks with demand writes (each write recalls or
/// invalidates pre-sent copies) and node 2 with demand reads. The rounds
/// and the demand traffic interleave freely — exactly the window in which
/// the pass-1 → pass-2 race lives. Afterwards the machine must be
/// coherent, every block must hold its last written value, and the
/// pre-send machinery must still have made progress.
#[test]
fn concurrent_demand_writes_during_presend_rounds() {
    const BLOCKS: usize = 8;
    const ROUNDS: usize = 60;
    const WRITES: usize = 240;
    let (mut nodes, joins) = machine(4, 32);

    let addrs: Vec<GAddr> = {
        let mut mem = nodes[0].shared.mem.lock();
        (0..BLOCKS).map(|_| mem.alloc(32, 32)).collect()
    };
    let layout = nodes[0].shared.layout;
    nodes[0].pred.install_manual(
        1,
        addrs.iter().map(|a| {
            (layout.block_of(*a), ManualEntry::Readers([2u16, 3].into_iter().collect::<NodeSet>()))
        }),
    );

    let mut node3 = nodes.pop().unwrap();
    let mut node2 = nodes.pop().unwrap();
    let mut node1 = nodes.pop().unwrap();
    let mut node0 = nodes.pop().unwrap();
    let addrs1 = addrs.clone();
    let addrs2 = addrs.clone();

    let (home, node1, node2, last_written) = std::thread::scope(|s| {
        let presender = s.spawn(move || {
            for _ in 0..ROUNDS {
                presend(&node0.pred, &node0.shared, &node0.wake_rx, &mut node0.stash, 1);
            }
            node0
        });
        let writer = s.spawn(move || {
            let mut last = [0u64; BLOCKS];
            for i in 0..WRITES {
                let b = i % BLOCKS;
                let v = (i as u64) << 8 | b as u64;
                node1.write_u64(addrs1[b], v);
                last[b] = v;
            }
            (node1, last)
        });
        let reader = s.spawn(move || {
            for i in 0..WRITES {
                node2.read_u64(addrs2[i % BLOCKS]);
            }
            node2
        });
        let home = presender.join().unwrap();
        let (n1, last) = writer.join().unwrap();
        let n2 = reader.join().unwrap();
        (home, n1, n2, last)
    });

    // Quiesced: all compute activity joined, every push acknowledged and
    // every fetch granted. The invariants must hold.
    let shareds: Vec<Arc<NodeShared>> =
        [&home, &node1, &node2, &node3].iter().map(|n| Arc::clone(&n.shared)).collect();
    let violations = check_coherence(&shareds);
    assert!(violations.is_empty(), "coherence violations after race: {violations:#?}");

    // Every block reads back as its last demand-written value.
    for (b, addr) in addrs.iter().enumerate() {
        assert_eq!(node3.read_u64(*addr), last_written[b], "block {b} lost a write");
    }

    // The rounds actually pushed copies (the race did not wedge or
    // permanently abort the machinery).
    let pushed = home.shared.stats.snapshot().presend_blocks_out;
    assert!(pushed > 0, "pre-send made no progress across {ROUNDS} rounds");

    for n in [home, node1, node2, node3] {
        n.shared.send(n.shared.me, Msg::Shutdown);
    }
    for j in joins {
        j.join().unwrap();
    }
}
