//! User-message handler codes for the predictive protocol.
//!
//! Tempest active messages carry a handler identifier; these constants are
//! the predictive protocol's vocabulary on top of Stache's
//! [`prescient_stache::msg::UserMsg`] escape hatch.

/// Home → target: bulk pre-send of read-only copies. `blocks` carries the
/// coalesced `(block, data)` run; the receiver installs all of them with a
/// `ReadOnly` tag and acknowledges.
pub const PRESEND_RO: u16 = 0x50;

/// Home → target: bulk pre-send of writable copies (`ReadWrite` tags).
pub const PRESEND_RW: u16 = 0x51;

/// Target → home: pre-send installed; `a` = number of blocks.
pub const PRESEND_ACK: u16 = 0x52;

/// Wake-up code delivered to the home's compute thread per acknowledged
/// pre-send message (`a` = number of blocks).
pub const WAKE_PRESEND_ACK: u16 = 0x53;
