//! User-message handler codes for the predictive protocol.
//!
//! Tempest active messages carry a handler identifier; these constants are
//! the predictive protocol's vocabulary on top of Stache's
//! [`prescient_stache::msg::UserMsg`] escape hatch.

/// Home → target: bulk pre-send of read-only copies. `blocks` carries the
/// coalesced `(block, data)` run; the receiver installs all of them with a
/// `ReadOnly` tag and acknowledges. `a` = push id (unique per sender,
/// echoed in the ack; duplicates are re-acked without re-installing),
/// `b` = the sender's pre-send epoch (stale-epoch pushes are dropped).
pub const PRESEND_RO: u16 = 0x50;

/// Home → target: bulk pre-send of writable copies (`ReadWrite` tags).
/// Same `a`/`b` discipline as [`PRESEND_RO`].
pub const PRESEND_RW: u16 = 0x51;

/// Target → home: pre-send installed. `a` = push id being acknowledged,
/// `b` = how many of the installed blocks overwrote a previously pre-sent
/// copy that was never read (useless pre-sends, fed to schedule health).
pub const PRESEND_ACK: u16 = 0x52;

/// Wake-up code delivered to the home's compute thread per acknowledged
/// pre-send message (`a` = push id, `b` = useless count; see
/// [`PRESEND_ACK`]).
pub const WAKE_PRESEND_ACK: u16 = 0x53;

/// Contributor → owner: one chunk of a privatized delta buffer for the
/// commutative-merge protocol. `blocks` carries a single `(chunk_seq,
/// payload)` entry whose pseudo block id is the chunk's sequence number
/// within the sender's payload for this merge window; the payload bytes
/// are opaque to the protocol (the application encodes/decodes them).
/// `a` = push id (unique per sender, echoed in the ack; duplicates are
/// re-acked without re-buffering), `b` = the sender's merge epoch
/// (stale-epoch pushes are dropped unacknowledged).
pub const COMMUTE_PUSH: u16 = 0x60;

/// Owner → contributor: delta chunk buffered. `a` = push id being
/// acknowledged, `b` = 0 (reserved).
pub const COMMUTE_ACK: u16 = 0x61;

/// Wake-up code delivered to the contributor's compute thread per
/// acknowledged delta chunk (`a` = push id; see [`COMMUTE_ACK`]).
pub const WAKE_COMMUTE_ACK: u16 = 0x62;
