//! User-message handler codes for the predictive protocol.
//!
//! Tempest active messages carry a handler identifier; these constants are
//! the predictive protocol's vocabulary on top of Stache's
//! [`prescient_stache::msg::UserMsg`] escape hatch.

/// Home → target: bulk pre-send of read-only copies. `blocks` carries the
/// coalesced `(block, data)` run; the receiver installs all of them with a
/// `ReadOnly` tag and acknowledges. `a` = push id (unique per sender,
/// echoed in the ack; duplicates are re-acked without re-installing),
/// `b` = the sender's pre-send epoch (stale-epoch pushes are dropped).
pub const PRESEND_RO: u16 = 0x50;

/// Home → target: bulk pre-send of writable copies (`ReadWrite` tags).
/// Same `a`/`b` discipline as [`PRESEND_RO`].
pub const PRESEND_RW: u16 = 0x51;

/// Target → home: pre-send installed. `a` = push id being acknowledged,
/// `b` = how many of the installed blocks overwrote a previously pre-sent
/// copy that was never read (useless pre-sends, fed to schedule health).
pub const PRESEND_ACK: u16 = 0x52;

/// Wake-up code delivered to the home's compute thread per acknowledged
/// pre-send message (`a` = push id, `b` = useless count; see
/// [`PRESEND_ACK`]).
pub const WAKE_PRESEND_ACK: u16 = 0x53;
