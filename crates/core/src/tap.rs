//! A recording tap on the predictive protocol's home-request stream — the
//! dynamic half of the schedule oracle.
//!
//! The oracle (in `prescient-cstar`) needs to know which blocks each
//! parallel call *actually* communicated, independent of whether the
//! protocol was armed or degraded at the time. The tap therefore hangs off
//! [`crate::Predictive::set_tap`] and logs **every** request offered to
//! [`on_home_request`](prescient_stache::Hooks::on_home_request), labeled
//! with the parallel call the interpreter is currently executing.
//!
//! The label is a plain atomic: the interpreter's per-call barriers
//! guarantee every node has set (or cleared) the same label before any
//! request of the next call can arrive, so no lock is needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use prescient_tempest::{BlockId, NodeId};

/// Sentinel label meaning "no parallel call in progress".
const NO_CALL: u64 = u64::MAX;

/// One observed home-node request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapEvent {
    /// Call-site id the interpreter had labeled, if any.
    pub call: Option<u64>,
    /// The requested block.
    pub block: BlockId,
    /// Requesting node.
    pub requester: NodeId,
    /// `true` for an exclusive (write) request.
    pub excl: bool,
}

/// Shared event recorder; one per machine, installed into every node's
/// predictive-protocol hooks.
#[derive(Debug, Default)]
pub struct AccessTap {
    label: AtomicU64,
    events: Mutex<Vec<TapEvent>>,
}

impl AccessTap {
    /// A fresh tap with no call in progress.
    pub fn new() -> AccessTap {
        AccessTap { label: AtomicU64::new(NO_CALL), events: Mutex::new(Vec::new()) }
    }

    /// Label subsequent events with parallel call `id`.
    pub fn set_call(&self, id: u64) {
        self.label.store(id, Ordering::SeqCst);
    }

    /// Clear the call label (requests outside any parallel call).
    pub fn clear_call(&self) {
        self.label.store(NO_CALL, Ordering::SeqCst);
    }

    /// Record one home-node request under the current label.
    pub fn record(&self, block: BlockId, requester: NodeId, excl: bool) {
        let l = self.label.load(Ordering::SeqCst);
        let call = if l == NO_CALL { None } else { Some(l) };
        if let Ok(mut ev) = self.events.lock() {
            ev.push(TapEvent { call, block, requester, excl });
        }
    }

    /// Snapshot the recorded events.
    pub fn events(&self) -> Vec<TapEvent> {
        self.events.lock().map(|ev| ev.clone()).unwrap_or_default()
    }

    /// Drain the recorded events.
    pub fn take(&self) -> Vec<TapEvent> {
        self.events.lock().map(|mut ev| std::mem::take(&mut *ev)).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_partition_events() {
        let tap = AccessTap::new();
        tap.record(BlockId(1), 2, false);
        tap.set_call(7);
        tap.record(BlockId(3), 0, true);
        tap.clear_call();
        tap.record(BlockId(5), 1, false);
        let ev = tap.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].call, None);
        assert_eq!(ev[1], TapEvent { call: Some(7), block: BlockId(3), requester: 0, excl: true });
        assert_eq!(ev[2].call, None);
        assert_eq!(tap.take().len(), 3);
        assert!(tap.events().is_empty());
    }
}
