//! The per-node predictive-protocol extension: schedule recording and the
//! receiver side of pre-sends.
//!
//! One [`Predictive`] instance exists per node. It plugs into the Stache
//! engine through [`prescient_stache::hooks::Hooks`]: the engine offers it
//! every request arriving at this home node (recording, §3.3) and routes
//! the pre-send user messages to it (§3.4). The sending side of the
//! pre-send phase runs on the *compute* thread and lives in
//! [`crate::presend`].

use parking_lot::Mutex;
use prescient_stache::hooks::Hooks;
use prescient_stache::msg::{Msg, UserMsg, Wake};
use prescient_stache::node::NodeShared;
use prescient_tempest::tag::Tag;
use prescient_tempest::{BlockId, NodeId, NodeSet, NodeStats};

use crate::codes;
use crate::schedule::{PhaseId, ScheduleStore};

/// Tuning knobs for the predictive protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictiveConfig {
    /// Coalesce runs of neighboring blocks with identical targets into one
    /// bulk message (§3.4). Disable for the ablation study.
    pub coalesce: bool,
    /// Upper bound on blocks per bulk message.
    pub max_bulk_blocks: usize,
    /// Pre-send conflict blocks toward their first stable state instead of
    /// skipping them — the optional policy §3.4 sketches. Off by default,
    /// matching the paper's implementation.
    pub anticipate_conflicts: bool,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig { coalesce: true, max_bulk_blocks: 256, anticipate_conflicts: false }
    }
}

pub(crate) struct PredState {
    /// Phase currently recording, if any.
    pub recording: Option<PhaseId>,
    /// This home node's slice of every phase's schedule.
    pub store: ScheduleStore,
}

/// Per-node predictive-protocol state: one per node, shared between that
/// node's protocol-handler thread (recording, pre-send receive) and compute
/// thread (pre-send drive, directives).
pub struct Predictive {
    pub(crate) cfg: PredictiveConfig,
    pub(crate) state: Mutex<PredState>,
}

impl Predictive {
    /// Create the extension state for one node.
    pub fn new(cfg: PredictiveConfig) -> Predictive {
        Predictive {
            cfg,
            state: Mutex::new(PredState { recording: None, store: ScheduleStore::default() }),
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> PredictiveConfig {
        self.cfg
    }

    /// Directive: start recording `phase` and advance its instance
    /// counter. Must be called *after* the pre-send for the phase and its
    /// stability barrier (the runtime's `phase_begin` wraps this).
    pub fn arm(&self, phase: PhaseId) {
        let mut st = self.state.lock();
        st.store.phase_mut(phase).cur_iter += 1;
        st.recording = Some(phase);
    }

    /// Directive: stop recording.
    ///
    /// Must be called *between two barriers* at the end of the phase (the
    /// runtime's `phase_end` does this): after the first barrier every
    /// requester has received its reply, so every in-phase request has been
    /// recorded at its home; the second barrier keeps other nodes'
    /// post-phase traffic from being misrecorded into this phase.
    pub fn end_phase(&self) {
        self.state.lock().recording = None;
    }

    /// Discard one phase's schedule (rebuild policy for patterns with many
    /// deletions, §3.3).
    pub fn flush(&self, phase: PhaseId) {
        self.state.lock().store.flush(phase);
    }

    /// Number of schedule entries currently held for `phase` at this node.
    pub fn entries(&self, phase: PhaseId) -> usize {
        self.state.lock().store.phase(phase).map_or(0, |p| p.entries.len())
    }

    /// Number of conflict-marked entries for `phase` at this node.
    pub fn conflicts(&self, phase: PhaseId) -> usize {
        self.state.lock().store.phase(phase).map_or(0, |p| p.conflicts())
    }
}

impl Hooks for Predictive {
    fn on_home_request(
        &self,
        node: &NodeShared,
        block: BlockId,
        requester: NodeId,
        excl: bool,
    ) -> bool {
        let mut st = self.state.lock();
        let Some(phase) = st.recording else { return false };
        let sched = st.store.phase_mut(phase);
        if excl {
            sched.record_write(block, requester);
        } else {
            sched.record_read(block, requester);
        }
        NodeStats::bump(&node.stats.sched_records);
        true
    }

    fn on_user(&self, node: &NodeShared, src: NodeId, msg: UserMsg) {
        match msg.code {
            codes::PRESEND_RO | codes::PRESEND_RW => {
                let tag = if msg.code == codes::PRESEND_RW { Tag::ReadWrite } else { Tag::ReadOnly };
                let count = msg.blocks.len() as u64;
                {
                    let mut mem = node.mem.lock();
                    for (block, data) in &msg.blocks {
                        mem.install(*block, data, tag, true);
                    }
                }
                NodeStats::add(&node.stats.presend_blocks_in, count);
                node.send(src, Msg::User(UserMsg::simple(codes::PRESEND_ACK, count)));
            }
            codes::PRESEND_ACK => {
                // Forward to the pre-send driver blocked on the compute
                // thread.
                node.wake(Wake::User { code: codes::WAKE_PRESEND_ACK, a: msg.a });
            }
            other => panic!("node {}: unknown user-message code {other:#x}", node.me),
        }
    }
}

/// A read-only description of one pre-send push, used by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Push {
    pub block: BlockId,
    pub targets: NodeSet,
    pub excl: bool,
}
