//! The per-node predictive-protocol extension: schedule recording, the
//! receiver side of pre-sends, and the schedule-health / degradation
//! machinery.
//!
//! One [`Predictive`] instance exists per node. It plugs into the Stache
//! engine through [`prescient_stache::hooks::Hooks`]: the engine offers it
//! every request arriving at this home node (recording, §3.3) and routes
//! the pre-send user messages to it (§3.4). The sending side of the
//! pre-send phase runs on the *compute* thread and lives in
//! [`crate::presend`].
//!
//! # Pre-send idempotency under a faulty fabric
//!
//! Pre-send pushes travel over the same fabric as everything else, so they
//! can be delayed, duplicated or dropped. Two mechanisms make the exchange
//! idempotent:
//!
//! * **Push ids** (`UserMsg.a`): every push carries a node-locally unique
//!   id; the receiver remembers which `(sender, id)` pairs it has installed
//!   this window and answers repeats with a fresh ack *without*
//!   re-installing — so a duplicated push cannot double-count the
//!   "overwrote an unread copy" signal, and a lost ack is repaired by the
//!   driver retransmitting the push. The driver in turn keys its
//!   outstanding set by id, so duplicated acks are ignored.
//! * **Epoch stamps** (`UserMsg.b`): each node keeps a pre-send epoch
//!   counter, advanced once per pre-send window *after* the stability
//!   barrier (every node has completed the same number of windows at every
//!   barrier, so all nodes agree on the epoch). A push stamped with an old
//!   epoch is a straggler duplicate from a previous window whose original
//!   was already acknowledged — it is dropped without an ack (counted as
//!   `presend_stale_in`). It cannot be a *first* delivery: the driver does
//!   not pass its window's ack wait until every push is acked.
//!
//! The acks this module sends run on the protocol-handler thread, whose
//! receive loop flushes its node's egress before every blocking wait —
//! so under fabric batching (DESIGN.md §2.1) acks produced while
//! draining a batch of pushes pack into one wire batch back to the
//! driver, and no explicit flush is needed here. The *driver* side's
//! flush obligations (after the push fan-out, before the ack wait) live
//! in [`crate::presend`].
//!
//! # Graceful degradation
//!
//! Each phase's schedule is a *prediction*; when the application's access
//! pattern shifts, the schedule pushes data nobody wants. Every pre-sent
//! copy that is recalled/invalidated before being read, or overwritten by
//! the next window's push while still unread, counts as a **useless
//! pre-send** against the phase that pushed it. When the useless ratio
//! exceeds [`DegradeConfig::useless_threshold_pct`] for
//! [`DegradeConfig::consecutive`] consecutive instances, the phase
//! *degrades*: its schedule is flushed and the phase runs as plain Stache
//! for [`DegradeConfig::backoff_instances`] instances, after which
//! recording re-arms and the schedule is rebuilt from live traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use prescient_stache::hooks::Hooks;
use prescient_stache::msg::{Msg, UserMsg, Wake};
use prescient_stache::node::NodeShared;
use prescient_tempest::tag::Tag;
use prescient_tempest::trace::{pack_peer_count, EventKind};
use prescient_tempest::{BlockId, NodeId, NodeSet, NodeStats};

use std::sync::Arc;

use crate::codes;
use crate::schedule::{PhaseId, ScheduleEntry, ScheduleStore};
use crate::tap::AccessTap;

/// Degradation policy for the predictive protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Master switch. Off = never degrade (the paper's behavior).
    pub enabled: bool,
    /// An instance is *bad* when `useless * 100 >= threshold * pushed`.
    pub useless_threshold_pct: u32,
    /// Number of consecutive bad instances before the phase degrades.
    pub consecutive: u32,
    /// Instances the phase spends as plain Stache before recording re-arms.
    pub backoff_instances: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: true,
            useless_threshold_pct: 50,
            consecutive: 3,
            backoff_instances: 4,
        }
    }
}

/// Tuning knobs for the predictive protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictiveConfig {
    /// Coalesce runs of neighboring blocks with identical targets into one
    /// bulk message (§3.4). Disable for the ablation study.
    pub coalesce: bool,
    /// Upper bound on blocks per bulk message.
    pub max_bulk_blocks: usize,
    /// Pre-send conflict blocks toward their first stable state instead of
    /// skipping them — the optional policy §3.4 sketches. Off by default,
    /// matching the paper's implementation.
    pub anticipate_conflicts: bool,
    /// Schedule-health / degradation policy.
    pub degrade: DegradeConfig,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            coalesce: true,
            max_bulk_blocks: 256,
            anticipate_conflicts: false,
            degrade: DegradeConfig::default(),
        }
    }
}

/// Schedule health for one phase at this node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseHealth {
    /// Pre-send windows this node has started for the phase (including
    /// skipped ones while degraded).
    pub instances: u64,
    /// Block copies pushed by the most recent non-skipped window.
    pub last_pushed: u64,
    /// Useless pre-sends charged to the phase since the last window.
    pub useless: u64,
    /// Consecutive instances whose useless ratio exceeded the threshold.
    pub consecutive_bad: u32,
    /// The phase runs as plain Stache until `instances` reaches this.
    pub degraded_until: u64,
    /// Times this phase has degraded.
    pub degrade_events: u64,
}

impl PhaseHealth {
    /// Whether the phase is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded_until > self.instances
    }
}

#[derive(Clone)]
pub(crate) struct PredState {
    /// Phase currently recording, if any.
    pub recording: Option<PhaseId>,
    /// This home node's slice of every phase's schedule.
    pub store: ScheduleStore,
    /// Per-phase schedule health (driven by `crate::presend`).
    pub health: HashMap<PhaseId, PhaseHealth>,
    /// Which phase pushed each block last, for charging teardown waste.
    pub pushed_by: HashMap<BlockId, PhaseId>,
    /// Next pre-send push id (node-local; uniqueness per sender is enough).
    pub next_push_id: u64,
    /// `(sender, push id)` pairs already installed in the current pre-send
    /// window; repeats are re-acked without re-installing. The stored value
    /// is the useless count the original ack reported, echoed on re-acks so
    /// a lost ack does not lose the signal. Cleared on every epoch bump.
    pub done_pushes: HashMap<(NodeId, u64), u64>,
}

/// Per-node predictive-protocol state: one per node, shared between that
/// node's protocol-handler thread (recording, pre-send receive) and compute
/// thread (pre-send drive, directives).
pub struct Predictive {
    pub(crate) cfg: PredictiveConfig,
    pub(crate) state: Mutex<PredState>,
    /// Pre-send window epoch; see the module docs. Advanced only by the
    /// compute thread (after the stability barrier), read by the protocol
    /// thread when validating incoming pushes.
    epoch: AtomicU64,
    /// Optional schedule-oracle tap: logs every home request, before and
    /// independent of the recording/degradation gates.
    tap: Mutex<Option<Arc<AccessTap>>>,
}

impl Predictive {
    /// Create the extension state for one node.
    pub fn new(cfg: PredictiveConfig) -> Predictive {
        Predictive {
            cfg,
            state: Mutex::new(PredState {
                recording: None,
                store: ScheduleStore::default(),
                health: HashMap::new(),
                pushed_by: HashMap::new(),
                next_push_id: 1,
                done_pushes: HashMap::new(),
            }),
            epoch: AtomicU64::new(1),
            tap: Mutex::new(None),
        }
    }

    /// Install (or remove) the schedule-oracle recording tap.
    pub fn set_tap(&self, tap: Option<Arc<AccessTap>>) {
        *self.tap.lock() = tap;
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> PredictiveConfig {
        self.cfg
    }

    /// The current pre-send epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the pre-send epoch. The runtime calls this once per pre-send
    /// window, *after* the stability barrier — at that point every push of
    /// the closing window has been acknowledged, so anything still carrying
    /// the old epoch is a duplicate.
    pub fn bump_epoch(&self) {
        self.state.lock().done_pushes.clear();
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Directive: start recording `phase` and advance its instance
    /// counter. Must be called *after* the pre-send for the phase and its
    /// stability barrier (the runtime's `phase_begin` wraps this).
    pub fn arm(&self, phase: PhaseId) {
        let mut st = self.state.lock();
        st.store.phase_mut(phase).cur_iter += 1;
        st.recording = Some(phase);
    }

    /// Directive: stop recording.
    ///
    /// Must be called *between two barriers* at the end of the phase (the
    /// runtime's `phase_end` does this): after the first barrier every
    /// requester has received its reply, so every in-phase request has been
    /// recorded at its home; the second barrier keeps other nodes'
    /// post-phase traffic from being misrecorded into this phase.
    pub fn end_phase(&self) {
        self.state.lock().recording = None;
    }

    /// Discard one phase's schedule (rebuild policy for patterns with many
    /// deletions, §3.3).
    pub fn flush(&self, phase: PhaseId) {
        self.state.lock().store.flush(phase);
    }

    /// Number of schedule entries currently held for `phase` at this node.
    pub fn entries(&self, phase: PhaseId) -> usize {
        self.state.lock().store.phase(phase).map_or(0, |p| p.entries.len())
    }

    /// Number of conflict-marked entries for `phase` at this node.
    pub fn conflicts(&self, phase: PhaseId) -> usize {
        self.state.lock().store.phase(phase).map_or(0, |p| p.conflicts())
    }

    /// This node's schedule health for `phase`.
    pub fn health(&self, phase: PhaseId) -> PhaseHealth {
        self.state.lock().health.get(&phase).copied().unwrap_or_default()
    }

    /// Whether `phase` is currently degraded at this node.
    pub fn is_degraded(&self, phase: PhaseId) -> bool {
        self.state.lock().health.get(&phase).is_some_and(PhaseHealth::is_degraded)
    }

    /// Times `phase` has degraded at this node.
    pub fn degrade_events(&self, phase: PhaseId) -> u64 {
        self.state.lock().health.get(&phase).map_or(0, |h| h.degrade_events)
    }

    /// Export this node's slice of every phase's schedule (stable order) —
    /// consumed by the schedule oracle's static↔dynamic diff.
    pub fn export_schedules(
        &self,
    ) -> Vec<(PhaseId, Vec<(BlockId, crate::schedule::ScheduleEntry)>)> {
        self.state.lock().store.export()
    }

    /// Capture this node's full predictive-protocol state at a quiescent
    /// cut: schedules, health, push bookkeeping, and the pre-send epoch.
    /// Taken at `phase_begin` *before* the window's [`Predictive::arm`],
    /// so the restored state is disarmed-at-cut and replay re-arms it.
    pub fn checkpoint(&self) -> PredCheckpoint {
        PredCheckpoint { state: self.state.lock().clone(), epoch: self.epoch() }
    }

    /// Roll this node's predictive-protocol state back to a captured cut.
    /// Callable only while the machine is quiescent (the recovery drain
    /// has emptied the channels): the epoch rewinds together with every
    /// peer's, so replayed pre-send windows re-stamp the same epochs.
    pub fn restore(&self, ckpt: &PredCheckpoint) {
        *self.state.lock() = ckpt.state.clone();
        self.epoch.store(ckpt.epoch, Ordering::Release);
    }
}

/// One node's predictive-protocol state at a consistent cut (see
/// [`Predictive::checkpoint`]).
#[derive(Clone)]
pub struct PredCheckpoint {
    state: PredState,
    epoch: u64,
}

impl Hooks for Predictive {
    fn on_home_request(
        &self,
        node: &NodeShared,
        block: BlockId,
        requester: NodeId,
        excl: bool,
    ) -> bool {
        // The oracle tap sees *every* request, even when the protocol is
        // not recording (unarmed, degraded, or stripped of phases by a
        // buggy compiler — exactly the cases the oracle must observe).
        if let Some(tap) = self.tap.lock().as_ref() {
            tap.record(block, requester, excl);
        }
        let mut st = self.state.lock();
        let Some(phase) = st.recording else { return false };
        // A degraded phase runs as plain Stache: no recording until the
        // backoff expires and the schedule can be rebuilt from scratch.
        if st.health.get(&phase).is_some_and(PhaseHealth::is_degraded) {
            return false;
        }
        let sched = st.store.phase_mut(phase);
        if excl {
            sched.record_write(block, requester);
        } else {
            sched.record_read(block, requester);
        }
        NodeStats::bump(&node.stats.sched_records);
        node.tracer().emit(
            EventKind::SchedRecord,
            block.0,
            u64::from(requester) << 1 | u64::from(excl),
        );
        true
    }

    fn on_user(&self, node: &NodeShared, src: NodeId, msg: UserMsg) {
        match msg.code {
            codes::PRESEND_RO | codes::PRESEND_RW => {
                if msg.b != self.epoch() {
                    // Straggler duplicate from an already-completed window
                    // (see the module docs for why it cannot be a first
                    // delivery). No ack: nobody is waiting for one.
                    NodeStats::bump(&node.stats.presend_stale_in);
                    return;
                }
                let push_id = msg.a;
                if let Some(&useless) = self.state.lock().done_pushes.get(&(src, push_id)) {
                    // Duplicate within the window (fabric dup, or the
                    // driver retransmitting because our ack was lost).
                    // Re-ack with the original useless count; do not
                    // re-install.
                    NodeStats::bump(&node.stats.presend_stale_in);
                    let mut ack = UserMsg::simple(codes::PRESEND_ACK, push_id);
                    ack.b = useless;
                    node.send(src, Msg::User(ack));
                    return;
                }
                let tag =
                    if msg.code == codes::PRESEND_RW { Tag::ReadWrite } else { Tag::ReadOnly };
                let count = msg.blocks.len() as u64;
                let bytes: u64 = msg.blocks.iter().map(|(_, d)| d.len() as u64).sum();
                // Batched upcall: all N blocks of the bulk message install
                // under one lock acquisition. The returned count is how
                // many installs overwrote a copy pushed earlier that was
                // never read — useless pre-sends, reported back to the
                // pushing home via the ack.
                let useless = node.mem.lock().install_bulk(&msg.blocks, tag, true);
                self.state.lock().done_pushes.insert((src, push_id), useless);
                NodeStats::add(&node.stats.presend_blocks_in, count);
                NodeStats::add(&node.stats.data_bytes_in, bytes);
                if node.tracer().on() {
                    // One install event per contiguous block run of the
                    // payload: exact per-block install times for the
                    // lead-time analysis at run, not block, granularity.
                    let mut run: Option<(u64, u64)> = None; // (first, len)
                    for (b, _) in msg.blocks.iter() {
                        run = match run {
                            Some((first, len)) if b.0 == first + len => Some((first, len + 1)),
                            Some((first, len)) => {
                                node.tracer().emit(
                                    EventKind::PresendInstall,
                                    first,
                                    pack_peer_count(src, len),
                                );
                                Some((b.0, 1))
                            }
                            None => Some((b.0, 1)),
                        };
                    }
                    if let Some((first, len)) = run {
                        node.tracer().emit(
                            EventKind::PresendInstall,
                            first,
                            pack_peer_count(src, len),
                        );
                    }
                }
                let mut ack = UserMsg::simple(codes::PRESEND_ACK, push_id);
                ack.b = useless;
                node.send(src, Msg::User(ack));
            }
            codes::PRESEND_ACK => {
                // Forward to the pre-send driver blocked on the compute
                // thread: `a` echoes the push id, `b` reports how many of
                // the blocks the previous window pushed were still unread.
                node.wake(Wake::User { code: codes::WAKE_PRESEND_ACK, a: msg.a, b: msg.b });
            }
            other => panic!("node {}: unknown user-message code {other:#x}", node.me),
        }
    }

    fn on_presend_wasted(&self, node: &NodeShared, block: BlockId) {
        NodeStats::bump(&node.stats.presend_useless);
        let mut st = self.state.lock();
        if let Some(&phase) = st.pushed_by.get(&block) {
            st.health.entry(phase).or_default().useless += 1;
        }
    }

    /// Home migration: strip every phase's schedule entry for `block` (and
    /// its waste-charging record) out of this node and encode it for the
    /// new home. Wire format: word 0 is the `pushed_by` phase (`u64::MAX`
    /// for none), followed by 7 words per phase entry —
    /// `[phase, readers, writer (MAX = none), read_iter, write_iter,
    /// flags (bit 0 conflict, bit 1 first_was_write), first_stamp]`.
    fn export_block_schedule(&self, _node: &NodeShared, block: BlockId) -> Vec<u64> {
        let mut st = self.state.lock();
        let pushed = st.pushed_by.remove(&block);
        let mut body = Vec::new();
        for pid in st.store.phase_ids() {
            if let Some(e) = st.store.phase_mut(pid).entries.remove(&block) {
                body.extend_from_slice(&[
                    u64::from(pid),
                    e.readers.0,
                    e.writer.map_or(u64::MAX, u64::from),
                    e.read_iter,
                    e.write_iter,
                    u64::from(e.conflict) | u64::from(e.first_was_write) << 1,
                    e.first_stamp,
                ]);
            }
        }
        if body.is_empty() && pushed.is_none() {
            return Vec::new();
        }
        let mut words = vec![pushed.map_or(u64::MAX, u64::from)];
        words.extend(body);
        words
    }

    /// Adopt the schedule entries a migrating block's previous home
    /// exported (inverse of [`Hooks::export_block_schedule`]'s encoding).
    fn import_block_schedule(&self, _node: &NodeShared, block: BlockId, words: &[u64]) {
        if words.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        if words[0] != u64::MAX {
            st.pushed_by.insert(block, words[0] as PhaseId);
        }
        for chunk in words[1..].chunks_exact(7) {
            let e = ScheduleEntry {
                readers: NodeSet(chunk[1]),
                writer: (chunk[2] != u64::MAX).then_some(chunk[2] as NodeId),
                read_iter: chunk[3],
                write_iter: chunk[4],
                conflict: chunk[5] & 1 != 0,
                first_was_write: chunk[5] & 2 != 0,
                first_stamp: chunk[6],
            };
            st.store.phase_mut(chunk[0] as PhaseId).entries.insert(block, e);
        }
    }
}

/// A read-only description of one pre-send push, used by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Push {
    pub block: BlockId,
    pub targets: NodeSet,
    pub excl: bool,
}
