//! The pre-send phase (§3.4): the home-node driver.
//!
//! At the start of a new instance of a recorded phase, each node walks its
//! slice of the phase's communication schedule and executes the anticipated
//! coherence actions early:
//!
//! * **read-marked** blocks: any current writer is torn down (the home
//!   issues the same recall the default protocol would) and read-only
//!   copies are forwarded to every recorded reader that does not already
//!   hold one;
//! * **write-marked** blocks: all other copies are invalidated and a
//!   writable copy is forwarded to the recorded writer;
//! * **conflict** blocks: no action.
//!
//! Runs of neighboring blocks with identical targets are coalesced into
//! single bulk messages to amortize message startup. Every bulk message is
//! acknowledged by its receiver; the driver returns only after all
//! acknowledgements, and the runtime then executes the global barrier that
//! leaves every block state stable before compute resumes (§3.4).
//!
//! The driver runs on the node's *compute* thread — it may block (its
//! tear-downs reuse the ordinary blocking fetch path), while all handler
//! work stays non-blocking.

use crossbeam::channel::Receiver;
use prescient_stache::engine::fetch;
use prescient_stache::msg::{Msg, UserMsg, Wake};
use prescient_stache::node::NodeShared;

use prescient_stache::dir::DirState;
use prescient_tempest::tag::Tag;
use prescient_tempest::{NodeSet, NodeStats};

use crate::codes;
use crate::predictive::{Predictive, Push};
use crate::schedule::{Action, PhaseId};

/// What one node's pre-send did, with its virtual-time bill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresendReport {
    /// Block copies forwarded (blocks × targets).
    pub blocks_pushed: u64,
    /// Bulk messages sent.
    pub msgs: u64,
    /// Bytes forwarded.
    pub bytes: u64,
    /// Blocking tear-down fetches (recalls/invalidations of stale copies).
    pub ensure_fetches: u64,
    /// Conflict entries skipped.
    pub skipped_conflicts: u64,
    /// Virtual time spent (billed to the figures' "Predictive protocol"
    /// bar segment).
    pub vtime_ns: u64,
}

/// Execute the pre-send for `phase` on this node. Returns after all
/// pushed copies are installed and acknowledged.
pub fn presend(
    pred: &Predictive,
    n: &NodeShared,
    wake_rx: &Receiver<Wake>,
    stash: &mut Vec<Wake>,
    phase: PhaseId,
) -> PresendReport {
    let me = n.me;
    let mut report = PresendReport::default();

    // Snapshot this node's schedule slice in block order.
    let entries = {
        let st = pred.state.lock();
        match st.store.phase(phase) {
            Some(p) => p.sorted_entries(),
            None => return report,
        }
    };

    // Pass 1: tear down stale copies (blocking, via the ordinary fault
    // path) and build the push list.
    let mut pushes: Vec<Push> = Vec::new();
    for (block, entry) in entries {
        match entry.action_with(pred.cfg.anticipate_conflicts) {
            Action::Conflict => {
                report.skipped_conflicts += 1;
            }
            Action::Read => {
                let readers = entry.readers.without(me);
                let state = dir_state(n, block);
                if matches!(state, DirState::Exclusive(_)) {
                    // Recall the writer's copy home (it stays a sharer).
                    let info = fetch(n, wake_rx, block, false, stash);
                    report.ensure_fetches += 1;
                    report.vtime_ns += n.cost.ensure_ns(info.bytes);
                }
                let sharers = match dir_state(n, block) {
                    DirState::Shared(s) => s,
                    _ => NodeSet::EMPTY,
                };
                let targets = readers.minus(sharers);
                if !targets.is_empty() {
                    pushes.push(Push { block, targets, excl: false });
                }
            }
            Action::Write => {
                let writer = entry.writer.expect("write action without writer");
                let state = dir_state(n, block);
                if writer == me {
                    // Prefetch ownership home.
                    if !matches!(state, DirState::Uncached) {
                        let info = fetch(n, wake_rx, block, true, stash);
                        report.ensure_fetches += 1;
                        report.vtime_ns += n.cost.ensure_ns(info.bytes);
                    }
                } else if state == DirState::Exclusive(writer) {
                    // The writer already owns it; nothing to do.
                } else {
                    if !matches!(state, DirState::Uncached) {
                        let info = fetch(n, wake_rx, block, true, stash);
                        report.ensure_fetches += 1;
                        report.vtime_ns += n.cost.ensure_ns(info.bytes);
                    }
                    pushes.push(Push { block, targets: NodeSet::single(writer), excl: true });
                }
            }
        }
    }

    // Pass 2: group into bulk messages and push.
    let groups = group_pushes(&pushes, pred.cfg.coalesce, pred.cfg.max_bulk_blocks);
    let mut outstanding = 0u64;
    for group in &groups {
        let first = group[0];
        let payload: Vec<_> = {
            let mut dir = n.dir.lock();
            let mut mem = n.mem.lock();
            group
                .iter()
                .map(|p| {
                    let e = dir.entry(p.block).or_default();
                    debug_assert!(!e.is_busy(), "pre-send raced a busy entry");
                    if p.excl {
                        let w = p.targets.iter().next().expect("excl push without target");
                        e.state = DirState::Exclusive(w);
                        mem.set_tag(p.block, Tag::Invalid);
                    } else {
                        let existing = match e.state {
                            DirState::Shared(s) => s,
                            _ => NodeSet::EMPTY,
                        };
                        e.state = DirState::Shared(existing.union(p.targets));
                        mem.set_tag(p.block, Tag::ReadOnly);
                    }
                    (p.block, mem.snapshot(p.block))
                })
                .collect()
        };
        let payload_bytes: u64 = payload.iter().map(|(_, d)| d.len() as u64).sum();
        let code = if first.excl { codes::PRESEND_RW } else { codes::PRESEND_RO };
        for t in first.targets.iter() {
            n.send(
                t,
                Msg::User(UserMsg {
                    code,
                    a: payload.len() as u64,
                    block: first.block,
                    set: first.targets,
                    node: me,
                    blocks: payload.clone(),
                }),
            );
            outstanding += 1;
            report.msgs += 1;
            report.blocks_pushed += payload.len() as u64;
            report.bytes += payload_bytes;
        }
    }

    NodeStats::add(&n.stats.presend_blocks_out, report.blocks_pushed);
    NodeStats::add(&n.stats.presend_msgs_out, report.msgs);
    NodeStats::add(&n.stats.presend_bytes_out, report.bytes);

    // Pass 3: wait for every bulk message to be acknowledged so that all
    // states are stable at the coming barrier.
    let mut acked = 0u64;
    stash.retain(|w| match w {
        Wake::User { code: codes::WAKE_PRESEND_ACK, .. } => {
            acked += 1;
            false
        }
        _ => true,
    });
    while acked < outstanding {
        match wake_rx.recv().expect("protocol thread terminated during pre-send") {
            Wake::User { code: codes::WAKE_PRESEND_ACK, .. } => acked += 1,
            other => panic!("unexpected wake during pre-send ack wait: {other:?}"),
        }
    }

    report.vtime_ns += n.cost.bulk_ns(report.msgs, report.blocks_pushed, report.bytes);
    report
}

fn dir_state(n: &NodeShared, block: prescient_tempest::BlockId) -> DirState {
    n.dir.lock().get(&block).map_or(DirState::Uncached, |e| {
        debug_assert!(!e.is_busy(), "pre-send observed a busy entry");
        e.state
    })
}

/// Group pushes into bulk messages: a group is a run of *neighboring*
/// blocks with identical targets and kind (or a singleton when coalescing
/// is disabled).
fn group_pushes(pushes: &[Push], coalesce: bool, max: usize) -> Vec<Vec<Push>> {
    let mut groups: Vec<Vec<Push>> = Vec::new();
    for &p in pushes {
        if coalesce {
            if let Some(last) = groups.last_mut() {
                let prev = *last.last().expect("groups are non-empty");
                if prev.block.next() == p.block
                    && prev.targets == p.targets
                    && prev.excl == p.excl
                    && last.len() < max
                {
                    last.push(p);
                    continue;
                }
            }
        }
        groups.push(vec![p]);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_tempest::BlockId;

    fn push(b: u64, targets: NodeSet, excl: bool) -> Push {
        Push { block: BlockId(b), targets, excl }
    }

    #[test]
    fn coalesces_neighbor_runs() {
        let t = NodeSet::single(3);
        let pushes = vec![push(10, t, false), push(11, t, false), push(12, t, false), push(20, t, false)];
        let groups = group_pushes(&pushes, true, 256);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn different_targets_break_runs() {
        let a = NodeSet::single(1);
        let b = NodeSet::single(2);
        let pushes = vec![push(10, a, false), push(11, b, false), push(12, b, false)];
        let groups = group_pushes(&pushes, true, 256);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn kind_change_breaks_runs() {
        let t = NodeSet::single(1);
        let pushes = vec![push(10, t, false), push(11, t, true)];
        assert_eq!(group_pushes(&pushes, true, 256).len(), 2);
    }

    #[test]
    fn no_coalescing_means_singletons() {
        let t = NodeSet::single(1);
        let pushes = vec![push(10, t, false), push(11, t, false)];
        assert_eq!(group_pushes(&pushes, false, 256).len(), 2);
    }

    #[test]
    fn max_bulk_respected() {
        let t = NodeSet::single(1);
        let pushes: Vec<Push> = (0..10).map(|i| push(i, t, false)).collect();
        let groups = group_pushes(&pushes, true, 4);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 4));
    }
}
