//! The pre-send phase (§3.4): the home-node driver.
//!
//! At the start of a new instance of a recorded phase, each node walks its
//! slice of the phase's communication schedule and executes the anticipated
//! coherence actions early:
//!
//! * **read-marked** blocks: any current writer is torn down (the home
//!   issues the same recall the default protocol would) and read-only
//!   copies are forwarded to every recorded reader that does not already
//!   hold one;
//! * **write-marked** blocks: all other copies are invalidated and a
//!   writable copy is forwarded to the recorded writer;
//! * **conflict** blocks: no action.
//!
//! Runs of neighboring blocks with identical targets are coalesced into
//! single bulk messages to amortize message startup. Every bulk message is
//! acknowledged by its receiver; the driver returns only after all
//! acknowledgements, and the runtime then executes the global barrier that
//! leaves every block state stable before compute resumes (§3.4).
//!
//! Under a faulty fabric the ack wait doubles as the retransmission layer:
//! each push carries a unique id and the current pre-send epoch, and any id
//! still unacknowledged when the wait times out is re-sent verbatim (the
//! receiver de-duplicates by id — see [`crate::predictive`]'s module docs).
//!
//! The driver also maintains the phase's **schedule health**: before doing
//! any work it scores the previous instance (useless pre-sends vs blocks
//! pushed) and, if the schedule has been mostly wrong for several
//! consecutive instances, degrades the phase to plain Stache for a backoff
//! period (see [`crate::predictive::DegradeConfig`]).
//!
//! The driver runs on the node's *compute* thread — it may block (its
//! tear-downs reuse the ordinary blocking fetch path), while all handler
//! work stays non-blocking.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use prescient_stache::engine::fetch;
use prescient_stache::msg::{Msg, UserMsg, Wake};
use prescient_stache::node::NodeShared;

use prescient_stache::dir::DirState;
use prescient_tempest::tag::Tag;
use prescient_tempest::trace::{pack_counts, pack_peer_count, EventKind};
use prescient_tempest::{NodeId, NodeSet, NodeStats};

use crate::codes;
use crate::predictive::{Predictive, Push};
use crate::schedule::{Action, PhaseId};

/// What one node's pre-send did, with its virtual-time bill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresendReport {
    /// Block copies forwarded (blocks × targets).
    pub blocks_pushed: u64,
    /// Bulk messages sent.
    pub msgs: u64,
    /// Bytes forwarded.
    pub bytes: u64,
    /// Blocking tear-down fetches (recalls/invalidations of stale copies).
    pub ensure_fetches: u64,
    /// Conflict entries skipped.
    pub skipped_conflicts: u64,
    /// The phase was degraded and the window skipped entirely.
    pub degraded: bool,
    /// Push retransmissions needed to get every push acknowledged.
    pub retransmits: u64,
    /// Virtual time spent (billed to the figures' "Predictive protocol"
    /// bar segment).
    pub vtime_ns: u64,
}

/// Score the previous instance and decide whether this window runs.
/// Returns `true` if the phase is degraded (the caller must skip).
fn health_gate(pred: &Predictive, n: &NodeShared, phase: PhaseId) -> bool {
    let dc = pred.cfg.degrade;
    let mut guard = pred.state.lock();
    let st = &mut *guard;
    let h = st.health.entry(phase).or_default();
    h.instances += 1;
    if h.degraded_until != 0 && h.degraded_until == h.instances {
        // The backoff just expired: this window runs again and recording
        // re-arms when the runtime arms the phase.
        n.tracer().emit(EventKind::Rearm, u64::from(phase), h.instances);
    }
    if dc.enabled && h.last_pushed > 0 {
        let bad = h.useless * 100 >= u64::from(dc.useless_threshold_pct) * h.last_pushed;
        if bad {
            h.consecutive_bad += 1;
        } else {
            h.consecutive_bad = 0;
        }
    }
    // The window's accounting starts fresh either way.
    h.useless = 0;
    h.last_pushed = 0;
    if dc.enabled && !h.is_degraded() && h.consecutive_bad >= dc.consecutive {
        h.consecutive_bad = 0;
        h.degraded_until = h.instances + dc.backoff_instances;
        h.degrade_events += 1;
        NodeStats::bump(&n.stats.degrade_events);
        n.tracer().emit(EventKind::Degrade, u64::from(phase), h.degraded_until);
        n.tracer().emit(EventKind::SchedFlush, u64::from(phase), 0);
        st.store.flush(phase);
        st.pushed_by.retain(|_, p| *p != phase);
        return true;
    }
    h.is_degraded()
}

/// Execute the pre-send for `phase` on this node. Returns after all
/// pushed copies are installed and acknowledged.
pub fn presend(
    pred: &Predictive,
    n: &NodeShared,
    wake_rx: &Receiver<Wake>,
    stash: &mut Vec<Wake>,
    phase: PhaseId,
) -> PresendReport {
    let me = n.me;
    let mut report = PresendReport::default();

    if health_gate(pred, n, phase) {
        report.degraded = true;
        return report;
    }

    // Snapshot this node's schedule slice, run-length-encoded in block
    // order: contiguous blocks with the same action toward the same
    // targets collapse into one `ReplayRun`, so the walk below touches
    // O(runs) headers (conflict runs skip in O(1)) instead of O(blocks)
    // hash-map entries. Expansion order and per-block behavior are
    // bit-identical to walking `sorted_entries`.
    let runs = {
        let st = pred.state.lock();
        match st.store.phase(phase) {
            Some(p) => p.replay(pred.cfg.anticipate_conflicts),
            None => return report,
        }
    };
    n.tracer().emit(EventKind::SchedReplay, u64::from(phase), runs.len() as u64);

    // Pass 1: tear down stale copies (blocking, via the ordinary fault
    // path) and build the push list.
    let mut pushes: Vec<Push> = Vec::new();
    for run in &runs {
        match run.action {
            Action::Conflict => {
                report.skipped_conflicts += run.len;
            }
            Action::Read => {
                let readers = run.readers.without(me);
                for block in run.blocks() {
                    // `None` (a multi-hop round in flight — e.g. a delayed
                    // demand request that arrived mid-window on a faulty
                    // fabric) is handled like Exclusive: the blocking
                    // ensure fetch serializes behind the round and leaves
                    // the block home-readable.
                    let state = dir_state(n, block);
                    if !matches!(state, Some(DirState::Uncached | DirState::Shared(_))) {
                        // Recall the writer's copy home (it stays a sharer).
                        let info = fetch(n, wake_rx, block, false, stash);
                        report.ensure_fetches += 1;
                        report.vtime_ns += n.cost.ensure_ns(info.bytes);
                    }
                    let sharers = match dir_state(n, block) {
                        Some(DirState::Shared(s)) => s,
                        _ => NodeSet::EMPTY,
                    };
                    let targets = readers.minus(sharers);
                    if !targets.is_empty() {
                        pushes.push(Push { block, targets, excl: false });
                    }
                }
            }
            Action::Write => {
                let writer = run.writer.expect("write run without writer");
                for block in run.blocks() {
                    let state = dir_state(n, block);
                    if writer == me {
                        // Prefetch ownership home.
                        if !matches!(state, Some(DirState::Uncached)) {
                            let info = fetch(n, wake_rx, block, true, stash);
                            report.ensure_fetches += 1;
                            report.vtime_ns += n.cost.ensure_ns(info.bytes);
                        }
                    } else if state == Some(DirState::Exclusive(writer)) {
                        // The writer already owns it; nothing to do.
                    } else {
                        if !matches!(state, Some(DirState::Uncached)) {
                            let info = fetch(n, wake_rx, block, true, stash);
                            report.ensure_fetches += 1;
                            report.vtime_ns += n.cost.ensure_ns(info.bytes);
                        }
                        pushes.push(Push { block, targets: NodeSet::single(writer), excl: true });
                    }
                }
            }
        }
    }

    // Pass 2: group into bulk messages and push. Every message carries a
    // unique push id (`a`) and the current epoch (`b`) so the exchange
    // survives duplication and loss; unacked messages are kept verbatim
    // for retransmission.
    //
    // Each push is *revalidated* under the directory lock before it is
    // committed: between pass 1 (which observed and tore down directory
    // state without holding the lock across the whole walk) and pass 2, a
    // demand request from another node may have won the block — leaving
    // the entry busy, or Exclusive at a node the schedule never predicted.
    // Blindly pushing then would hand out copies that violate the
    // single-writer invariant. Stale pushes are dropped (counted in
    // `presend_aborted`); the demand path already did, or will do, the
    // transfer.
    //
    // The payload is snapshotted once per group into an `Arc` list; the
    // per-target fan-out and the retransmission store clone refcounts, not
    // block bytes.
    let epoch = pred.epoch();
    let groups = group_pushes(&pushes, pred.cfg.coalesce, pred.cfg.max_bulk_blocks);
    n.tracer().emit(
        EventKind::SchedCoalesce,
        u64::from(phase),
        pack_counts(pushes.len() as u64, groups.len() as u64),
    );
    let mut outstanding: HashMap<u64, (NodeId, UserMsg)> = HashMap::new();
    let mut sent: Vec<Push> = Vec::with_capacity(pushes.len());
    let mut aborted = 0u64;
    for group in &groups {
        let first = group[0];
        let payload: Arc<[(prescient_tempest::BlockId, Arc<[u8]>)]> = {
            let mut dir = n.dir.lock();
            let mut mem = n.mem.lock();
            let mut kept = Vec::with_capacity(group.len());
            for p in group {
                let e = dir.entry(p.block);
                let stale = e.is_busy()
                    || if p.excl {
                        // Pass 1 tore the block down to Uncached; anything
                        // else means a demand request got there first.
                        e.state != DirState::Uncached
                    } else {
                        // A read push only conflicts with a writer.
                        matches!(e.state, DirState::Exclusive(_))
                    };
                if stale {
                    aborted += 1;
                    continue;
                }
                if p.excl {
                    let w = p.targets.iter().next().expect("excl push without target");
                    e.state = DirState::Exclusive(w);
                    mem.set_tag(p.block, Tag::Invalid);
                } else {
                    let existing = match e.state {
                        DirState::Shared(s) => s,
                        _ => NodeSet::EMPTY,
                    };
                    e.state = DirState::Shared(existing.union(p.targets));
                    mem.set_tag(p.block, Tag::ReadOnly);
                }
                kept.push((p.block, mem.snapshot(p.block)));
                sent.push(*p);
            }
            kept.into()
        };
        if payload.is_empty() {
            continue;
        }
        let payload_bytes: u64 = payload.iter().map(|(_, d)| d.len() as u64).sum();
        let code = if first.excl { codes::PRESEND_RW } else { codes::PRESEND_RO };
        for t in first.targets.iter() {
            let id = {
                let mut st = pred.state.lock();
                let id = st.next_push_id;
                st.next_push_id += 1;
                id
            };
            let m = UserMsg {
                code,
                a: id,
                b: epoch,
                block: first.block,
                set: first.targets,
                node: me,
                blocks: Arc::clone(&payload),
            };
            n.tracer().emit(EventKind::PresendPush, id, pack_peer_count(t, payload.len() as u64));
            n.send(t, Msg::User(m.clone()));
            outstanding.insert(id, (t, m));
            report.msgs += 1;
            report.blocks_pushed += payload.len() as u64;
            report.bytes += payload_bytes;
        }
    }
    NodeStats::add(&n.stats.presend_aborted, aborted);
    // The fan-out is over and pass 3 blocks waiting for acks: everything
    // buffered in the egress must be on the wire first.
    n.flush_net();

    NodeStats::add(&n.stats.presend_blocks_out, report.blocks_pushed);
    NodeStats::add(&n.stats.presend_msgs_out, report.msgs);
    NodeStats::add(&n.stats.presend_bytes_out, report.bytes);

    // Pass 3: wait for every bulk message to be acknowledged so that all
    // states are stable at the coming barrier, retransmitting unacked
    // pushes on timeout. `useless` accumulates the receivers' reports of
    // previously-pushed copies that were overwritten while still unread.
    let mut useless = 0u64;
    stash.retain(|w| match w {
        Wake::User { code: codes::WAKE_PRESEND_ACK, a, b } => {
            if outstanding.remove(a).is_some() {
                useless += b;
            }
            false
        }
        _ => true,
    });
    let mut rounds = 0u32;
    while !outstanding.is_empty() {
        match wake_rx.recv_timeout(n.retry.timeout) {
            Ok(Wake::User { code: codes::WAKE_PRESEND_ACK, a, b }) => {
                // `remove` de-duplicates: an ack for an id that has already
                // been acked (its push was duplicated in flight) is inert.
                if outstanding.remove(&a).is_some() {
                    useless += b;
                }
            }
            // A stale grant wake can slip in if a duplicated grant for an
            // earlier fetch raced its teardown; it carries nothing we need.
            Ok(Wake::Grant { .. }) => {}
            // Recovery fences are only in flight while every compute thread
            // sits in the recovery protocol, never during a pre-send window;
            // tolerate (and drop) one anyway.
            Ok(Wake::Fence) => {}
            // A straggler migration ack from a window that already closed.
            Ok(Wake::MigrateAck { .. }) => {}
            Ok(other) => panic!("unexpected wake during pre-send ack wait: {other:?}"),
            Err(RecvTimeoutError::Timeout) => {
                if n.is_aborting() {
                    // The machine was declared dead (panic isolation /
                    // watchdog): unwind instead of re-arming retries.
                    std::panic::panic_any(prescient_tempest::Aborted);
                }
                rounds += 1;
                n.tracer().emit(
                    EventKind::PresendRetry,
                    outstanding.len() as u64,
                    u64::from(rounds),
                );
                assert!(
                    rounds <= n.retry.max_retries,
                    "node {me}: {} pre-send pushes unacked after {rounds} rounds (machine wedged)",
                    outstanding.len()
                );
                for (t, m) in outstanding.values() {
                    n.send(*t, Msg::User(m.clone()));
                    report.retransmits += 1;
                }
                // Back to waiting: flush the retransmissions out.
                n.flush_net();
                NodeStats::add(&n.stats.presend_retries, outstanding.len() as u64);
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("protocol thread terminated during pre-send")
            }
        }
    }

    // Feed the schedule-health accounting: what this window pushed, what
    // the receivers said about the previous window's pushes, and which
    // phase to charge when one of this window's copies is torn down unread.
    {
        let mut st = pred.state.lock();
        // Only pushes that actually went out are this window's: an aborted
        // push must not charge a later teardown of the demand-path copy to
        // this phase's schedule health.
        for p in &sent {
            st.pushed_by.insert(p.block, phase);
        }
        let h = st.health.entry(phase).or_default();
        h.last_pushed = report.blocks_pushed;
        h.useless += useless;
    }
    NodeStats::add(&n.stats.presend_useless, useless);

    report.vtime_ns += n.cost.bulk_ns(report.msgs, report.blocks_pushed, report.bytes);
    report
}

/// The block's directory state, or `None` if a multi-hop round is in
/// flight. Pass 1 used to `debug_assert!` that never happens, but a delayed
/// demand request released by a faulty fabric mid-window makes it real:
/// callers must treat `None` as "state unknown, serialize via a fetch".
fn dir_state(n: &NodeShared, block: prescient_tempest::BlockId) -> Option<DirState> {
    let dir = n.dir.lock();
    match dir.get(block) {
        None => Some(DirState::Uncached),
        Some(e) if e.is_busy() => None,
        Some(e) => Some(e.state),
    }
}

/// Group pushes into bulk messages: a group is a run of *neighboring*
/// blocks with identical targets and kind (or a singleton when coalescing
/// is disabled).
fn group_pushes(pushes: &[Push], coalesce: bool, max: usize) -> Vec<Vec<Push>> {
    let mut groups: Vec<Vec<Push>> = Vec::new();
    for &p in pushes {
        if coalesce {
            if let Some(last) = groups.last_mut() {
                let prev = *last.last().expect("groups are non-empty");
                if prev.block.next() == p.block
                    && prev.targets == p.targets
                    && prev.excl == p.excl
                    && last.len() < max
                {
                    last.push(p);
                    continue;
                }
            }
        }
        groups.push(vec![p]);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_tempest::BlockId;

    fn push(b: u64, targets: NodeSet, excl: bool) -> Push {
        Push { block: BlockId(b), targets, excl }
    }

    #[test]
    fn coalesces_neighbor_runs() {
        let t = NodeSet::single(3);
        let pushes =
            vec![push(10, t, false), push(11, t, false), push(12, t, false), push(20, t, false)];
        let groups = group_pushes(&pushes, true, 256);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn different_targets_break_runs() {
        let a = NodeSet::single(1);
        let b = NodeSet::single(2);
        let pushes = vec![push(10, a, false), push(11, b, false), push(12, b, false)];
        let groups = group_pushes(&pushes, true, 256);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn kind_change_breaks_runs() {
        let t = NodeSet::single(1);
        let pushes = vec![push(10, t, false), push(11, t, true)];
        assert_eq!(group_pushes(&pushes, true, 256).len(), 2);
    }

    #[test]
    fn no_coalescing_means_singletons() {
        let t = NodeSet::single(1);
        let pushes = vec![push(10, t, false), push(11, t, false)];
        assert_eq!(group_pushes(&pushes, false, 256).len(), 2);
    }

    #[test]
    fn max_bulk_respected() {
        let t = NodeSet::single(1);
        let pushes: Vec<Push> = (0..10).map(|i| push(i, t, false)).collect();
        let groups = group_pushes(&pushes, true, 4);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 4));
    }
}
