//! # prescient-core
//!
//! The paper's primary contribution: a **predictive cache-coherence
//! protocol** that optimizes *repetitive* shared-memory communication in
//! iterative parallel applications (§3).
//!
//! The protocol augments Stache in two parts:
//!
//! 1. **Schedule building** (§3.3, [`schedule`]): while a compiler-marked
//!    parallel phase executes, every read/write request arriving at a home
//!    node is recorded into that phase's *communication schedule* — which
//!    blocks were requested, by whom, and how. Blocks both read and written
//!    within one phase instance are marked *conflict*. Schedules grow
//!    incrementally across iterations (new faults add entries); deletions
//!    are not tracked, so a schedule can be flushed and rebuilt when the
//!    pattern shrinks.
//! 2. **Pre-sending** (§3.4, [`presend`]): at the next instance of the
//!    phase, each home node walks its part of the schedule and transfers
//!    data *before* the computation faults on it: read-marked blocks are
//!    recalled from any writer and read-only copies are forwarded to all
//!    recorded readers; write-marked blocks are torn down and a writable
//!    copy is forwarded to the recorded writer; conflict blocks get no
//!    action. Neighboring blocks with identical targets are *coalesced*
//!    into bulk messages to amortize message startup. A global barrier
//!    after the transfers leaves all block states stable before compute
//!    resumes.
//!
//! The protocol is driven by two compiler-inserted directives
//! ([`Predictive::presend_and_arm`] / [`Predictive::end_phase`]), placed by
//! the analysis in `prescient-cstar` (§4); the runtime wraps them with
//! barriers.
//!
//! [`manual`] additionally exposes hand-built schedules, used to model the
//! paper's hand-optimized SPMD baseline (an application-specific
//! write-update protocol in the style of Falsafi et al. [5]).
//!
//! [`commute`] adds a third protocol mode for the conflict phases §3.4
//! leaves without action: when the `cstar` commutativity analysis proves a
//! phase's aggregate updates mergeable (a `CommutativeMerge` directive),
//! each node privatizes its updates into a delta buffer and the buffers
//! are exchanged in bulk at the phase barrier, replacing per-block
//! ownership migration entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codes;
pub mod commute;
pub mod manual;
pub mod predictive;
pub mod presend;
pub mod schedule;
pub mod tap;

pub use commute::{Commute, CommuteCheckpoint, CommuteConfig, MergeReport};
pub use predictive::{DegradeConfig, PhaseHealth, PredCheckpoint, Predictive, PredictiveConfig};
pub use presend::PresendReport;
pub use schedule::{Action, PhaseId, PhaseSchedule, ReplayRun, ScheduleEntry, ScheduleStore};
pub use tap::{AccessTap, TapEvent};
