//! The commutative-merge protocol extension: privatize-and-merge for
//! conflict phases the commutativity analysis proves mergeable.
//!
//! §3.4 leaves conflict blocks (read **and** written within one phase
//! instance) without protocol action: they fall back to plain ownership
//! migration, which is exactly the traffic that dominates Barnes'
//! tree-build. When the `cstar` analysis proves every write of the
//! conflicting aggregate an associative-commutative reduction
//! ([`crate::codes::COMMUTE_PUSH`] is placed by a `CommutativeMerge`
//! directive), the runtime can run the phase privatized instead: each node
//! updates a private delta buffer with no coherence traffic at all, and the
//! deltas are exchanged in bulk at the phase barrier — one message per
//! (contributor, owner) pair instead of per-block migration ping-pong.
//!
//! One [`Commute`] instance exists per node. Like
//! [`crate::predictive::Predictive`] it plugs into the Stache engine
//! through [`prescient_stache::hooks::Hooks`]: the protocol-handler thread
//! buffers incoming delta chunks and acknowledges them, while the *compute*
//! thread drives the exchange ([`merge`]) between the two barriers the
//! runtime wraps around it.
//!
//! # Idempotency under a faulty fabric
//!
//! The exchange reuses the pre-send discipline (see
//! [`crate::predictive`]'s module docs): every chunk carries a node-locally
//! unique **push id** (`UserMsg.a`, re-acked without re-buffering on
//! duplicates) and the sender's **merge epoch** (`UserMsg.b`; stale-epoch
//! stragglers are dropped unacknowledged). The epoch advances only on the
//! compute thread, after the stability barrier that ends the merge window,
//! so all nodes agree on it at every barrier.
//!
//! # Determinism
//!
//! Chunks arrive in whatever order the fabric delivers them.
//! [`Commute::take_inbox`] therefore returns them sorted by
//! `(contributor, push id)` — a total order every run agrees on — so the
//! application replays merged updates deterministically and recovered runs
//! stay bit-identical (DESIGN.md §12).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use prescient_stache::hooks::Hooks;
use prescient_stache::msg::{Msg, UserMsg, Wake};
use prescient_stache::node::NodeShared;
use prescient_tempest::{BlockId, NodeId, NodeSet, NodeStats};

use crate::codes;

/// Tuning knobs for the commutative-merge protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommuteConfig {
    /// Upper bound on delta-payload bytes per push message; larger
    /// payloads split into multiple chunks (each acknowledged
    /// independently, like a pre-send bulk message).
    pub max_chunk_bytes: usize,
}

impl Default for CommuteConfig {
    fn default() -> Self {
        CommuteConfig { max_chunk_bytes: 16 * 1024 }
    }
}

/// One buffered delta chunk at an owner.
#[derive(Debug, Clone)]
struct Chunk {
    src: NodeId,
    id: u64,
    bytes: Arc<[u8]>,
}

#[derive(Debug, Clone)]
struct CommuteState {
    /// Delta chunks received this merge window, in arrival order.
    inbox: Vec<Chunk>,
    /// Next push id (node-local; uniqueness per sender is enough).
    next_push_id: u64,
    /// `(sender, push id)` pairs already buffered this window; repeats are
    /// re-acked without re-buffering. Cleared on every epoch bump.
    done_pushes: HashSet<(NodeId, u64)>,
}

/// Per-node commutative-merge state: one per node, shared between that
/// node's protocol-handler thread (delta receive) and compute thread
/// (the [`merge`] driver and [`Commute::take_inbox`]).
pub struct Commute {
    cfg: CommuteConfig,
    state: Mutex<CommuteState>,
    /// Merge window epoch; see the module docs. Advanced only by the
    /// compute thread (after the stability barrier), read by the protocol
    /// thread when validating incoming chunks.
    epoch: AtomicU64,
}

impl Commute {
    /// Create the extension state for one node.
    pub fn new(cfg: CommuteConfig) -> Commute {
        Commute {
            cfg,
            state: Mutex::new(CommuteState {
                inbox: Vec::new(),
                next_push_id: 1,
                done_pushes: HashSet::new(),
            }),
            epoch: AtomicU64::new(1),
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> CommuteConfig {
        self.cfg
    }

    /// The current merge epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the merge epoch. The runtime calls this once per merge
    /// window, *after* the stability barrier — at that point every chunk of
    /// the closing window has been acknowledged, so anything still carrying
    /// the old epoch is a duplicate.
    pub fn bump_epoch(&self) {
        self.state.lock().done_pushes.clear();
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Drain the merge inbox, sorted by `(contributor, push id)` — the
    /// total order that makes the application's replay deterministic.
    /// Callable only between the window's stability barrier and the next
    /// window (no chunk can be in flight).
    pub fn take_inbox(&self) -> Vec<(NodeId, Arc<[u8]>)> {
        let mut chunks = std::mem::take(&mut self.state.lock().inbox);
        chunks.sort_by_key(|c| (c.src, c.id));
        chunks.into_iter().map(|c| (c.src, c.bytes)).collect()
    }

    /// Capture this node's full merge state at a quiescent cut: the epoch,
    /// the push bookkeeping, and any delta chunks buffered but not yet
    /// drained (in-flight with respect to the application).
    pub fn checkpoint(&self) -> CommuteCheckpoint {
        CommuteCheckpoint { state: self.state.lock().clone(), epoch: self.epoch() }
    }

    /// Roll this node's merge state back to a captured cut. Callable only
    /// while the machine is quiescent (the recovery drain has emptied the
    /// channels): the epoch rewinds together with every peer's, so replayed
    /// merge windows re-stamp the same epochs.
    pub fn restore(&self, ckpt: &CommuteCheckpoint) {
        *self.state.lock() = ckpt.state.clone();
        self.epoch.store(ckpt.epoch, Ordering::Release);
    }
}

/// One node's commutative-merge state at a consistent cut (see
/// [`Commute::checkpoint`]).
#[derive(Clone)]
pub struct CommuteCheckpoint {
    state: CommuteState,
    epoch: u64,
}

impl Hooks for Commute {
    fn on_home_request(
        &self,
        _node: &NodeShared,
        _block: BlockId,
        _requester: NodeId,
        _excl: bool,
    ) -> bool {
        // The merge mode records no schedules: non-merged phases run as
        // plain Stache.
        false
    }

    fn on_user(&self, node: &NodeShared, src: NodeId, msg: UserMsg) {
        match msg.code {
            codes::COMMUTE_PUSH => {
                if msg.b != self.epoch() {
                    // Straggler duplicate from an already-completed window
                    // (the driver does not pass its ack wait until every
                    // chunk is acked, so it cannot be a first delivery).
                    // No ack: nobody is waiting for one.
                    NodeStats::bump(&node.stats.presend_stale_in);
                    return;
                }
                let push_id = msg.a;
                let mut st = self.state.lock();
                if st.done_pushes.contains(&(src, push_id)) {
                    // Duplicate within the window (fabric dup, or the
                    // driver retransmitting because our ack was lost).
                    // Re-ack; do not re-buffer.
                    NodeStats::bump(&node.stats.presend_stale_in);
                } else {
                    st.done_pushes.insert((src, push_id));
                    let bytes: u64 = msg.blocks.iter().map(|(_, d)| d.len() as u64).sum();
                    for (_, d) in msg.blocks.iter() {
                        st.inbox.push(Chunk { src, id: push_id, bytes: Arc::clone(d) });
                    }
                    NodeStats::add(&node.stats.data_bytes_in, bytes);
                }
                drop(st);
                node.send(src, Msg::User(UserMsg::simple(codes::COMMUTE_ACK, push_id)));
            }
            codes::COMMUTE_ACK => {
                // Forward to the merge driver blocked on the compute
                // thread: `a` echoes the push id.
                node.wake(Wake::User { code: codes::WAKE_COMMUTE_ACK, a: msg.a, b: 0 });
            }
            other => panic!("node {}: unknown user-message code {other:#x}", node.me),
        }
    }
}

/// What one node's merge exchange sent, with its virtual-time bill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Delta chunks pushed to other nodes (self-deltas are buffered
    /// locally without touching the fabric).
    pub chunks_out: u64,
    /// Push messages sent (= `chunks_out`: one chunk per message).
    pub msgs: u64,
    /// Delta bytes pushed over the fabric.
    pub bytes: u64,
    /// Chunk retransmissions needed to get every push acknowledged.
    pub retransmits: u64,
    /// Virtual time spent (billed to the figures' protocol bar segment,
    /// like the pre-send window).
    pub vtime_ns: u64,
}

/// Execute one merge exchange on this node's compute thread: push every
/// outgoing delta payload to its owner and wait until all chunks are
/// acknowledged. The runtime brackets this with the entry barrier (all
/// peers privatized) and the stability barrier (all chunks buffered
/// everywhere), then drains [`Commute::take_inbox`] and bumps the epoch.
///
/// Payloads are opaque to the protocol; a payload for this node itself is
/// buffered directly into the local inbox without touching the fabric.
pub fn merge(
    cm: &Commute,
    n: &NodeShared,
    wake_rx: &Receiver<Wake>,
    stash: &mut Vec<Wake>,
    outgoing: &[(NodeId, Vec<u8>)],
) -> MergeReport {
    let me = n.me;
    let mut report = MergeReport::default();
    let epoch = cm.epoch();
    let max = cm.cfg.max_chunk_bytes.max(1);

    // Fan out, one push message per chunk. Unacked messages are kept
    // verbatim for retransmission.
    let mut outstanding: HashMap<u64, (NodeId, UserMsg)> = HashMap::new();
    for (target, payload) in outgoing {
        if payload.is_empty() {
            continue;
        }
        for (seq, chunk) in payload.chunks(max).enumerate() {
            let id = {
                let mut st = cm.state.lock();
                let id = st.next_push_id;
                st.next_push_id += 1;
                id
            };
            let data: Arc<[u8]> = chunk.into();
            if *target == me {
                // Local contribution: no fabric, but the same inbox so the
                // replay order treats every contributor alike.
                cm.state.lock().inbox.push(Chunk { src: me, id, bytes: data });
                continue;
            }
            let m = UserMsg {
                code: codes::COMMUTE_PUSH,
                a: id,
                b: epoch,
                block: BlockId(seq as u64),
                set: NodeSet::single(*target),
                node: me,
                blocks: vec![(BlockId(seq as u64), data)].into(),
            };
            n.send(*target, Msg::User(m.clone()));
            outstanding.insert(id, (*target, m));
            NodeStats::bump(&n.stats.merge_chunks_out);
            report.chunks_out += 1;
            report.msgs += 1;
            report.bytes += chunk.len() as u64;
        }
    }
    // The fan-out is over and the ack wait blocks next: everything
    // buffered in the egress must be on the wire first.
    n.flush_net();

    // Wait for every chunk to be acknowledged so all inboxes are stable at
    // the coming barrier, retransmitting unacked chunks on timeout.
    stash.retain(|w| match w {
        Wake::User { code: codes::WAKE_COMMUTE_ACK, a, .. } => {
            outstanding.remove(a);
            false
        }
        _ => true,
    });
    let mut rounds = 0u32;
    while !outstanding.is_empty() {
        match wake_rx.recv_timeout(n.retry.timeout) {
            Ok(Wake::User { code: codes::WAKE_COMMUTE_ACK, a, .. }) => {
                // `remove` de-duplicates: an ack for an id already acked
                // (its push was duplicated in flight) is inert.
                outstanding.remove(&a);
            }
            // A stale grant wake can slip in if a duplicated grant for an
            // earlier fetch raced its teardown; it carries nothing we need.
            Ok(Wake::Grant { .. }) => {}
            // Recovery fences are only in flight while every compute thread
            // sits in the recovery protocol, never during a merge window;
            // tolerate (and drop) one anyway.
            Ok(Wake::Fence) => {}
            // A straggler migration ack from a window that already closed.
            Ok(Wake::MigrateAck { .. }) => {}
            Ok(other) => panic!("unexpected wake during merge ack wait: {other:?}"),
            Err(RecvTimeoutError::Timeout) => {
                if n.is_aborting() {
                    // The machine was declared dead (panic isolation /
                    // watchdog): unwind instead of re-arming retries.
                    std::panic::panic_any(prescient_tempest::Aborted);
                }
                rounds += 1;
                assert!(
                    rounds <= n.retry.max_retries,
                    "node {me}: {} merge chunks unacked after {rounds} rounds (machine wedged)",
                    outstanding.len()
                );
                for (t, m) in outstanding.values() {
                    n.send(*t, Msg::User(m.clone()));
                    report.retransmits += 1;
                }
                // Back to waiting: flush the retransmissions out.
                n.flush_net();
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("protocol thread terminated during merge exchange")
            }
        }
    }

    report.vtime_ns = n.cost.bulk_ns(report.msgs, report.chunks_out, report.bytes);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_drains_sorted_by_contributor_then_id() {
        let cm = Commute::new(CommuteConfig::default());
        {
            let mut st = cm.state.lock();
            st.inbox.push(Chunk { src: 2, id: 7, bytes: vec![2u8].into() });
            st.inbox.push(Chunk { src: 0, id: 9, bytes: vec![0u8].into() });
            st.inbox.push(Chunk { src: 2, id: 3, bytes: vec![1u8].into() });
        }
        let got = cm.take_inbox();
        let order: Vec<(NodeId, u8)> = got.iter().map(|(s, b)| (*s, b[0])).collect();
        assert_eq!(order, vec![(0, 0), (2, 1), (2, 2)]);
        assert!(cm.take_inbox().is_empty(), "drain empties the inbox");
    }

    #[test]
    fn epoch_bump_clears_push_bookkeeping() {
        let cm = Commute::new(CommuteConfig::default());
        assert_eq!(cm.epoch(), 1);
        cm.state.lock().done_pushes.insert((3, 11));
        cm.bump_epoch();
        assert_eq!(cm.epoch(), 2);
        assert!(cm.state.lock().done_pushes.is_empty());
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let cm = Commute::new(CommuteConfig::default());
        {
            let mut st = cm.state.lock();
            st.inbox.push(Chunk { src: 1, id: 4, bytes: vec![9u8, 9].into() });
            st.next_push_id = 17;
            st.done_pushes.insert((1, 4));
        }
        cm.bump_epoch();
        let ckpt = cm.checkpoint();

        // Diverge, then roll back.
        cm.bump_epoch();
        cm.state.lock().inbox.clear();
        cm.state.lock().next_push_id = 99;
        cm.restore(&ckpt);

        assert_eq!(cm.epoch(), 2);
        let st = cm.state.lock();
        assert_eq!(st.next_push_id, 17);
        assert_eq!(st.inbox.len(), 1);
        assert_eq!(&st.inbox[0].bytes[..], &[9, 9]);
    }

    #[test]
    fn restored_window_reissues_the_same_push_ids() {
        // The driver allocates ids from `next_push_id`; a rollback must
        // make a replayed window indistinguishable from the original.
        let cm = Commute::new(CommuteConfig::default());
        let ckpt = cm.checkpoint();
        let take_id = |cm: &Commute| {
            let mut st = cm.state.lock();
            let id = st.next_push_id;
            st.next_push_id += 1;
            id
        };
        let first: Vec<u64> = (0..3).map(|_| take_id(&cm)).collect();
        cm.restore(&ckpt);
        let replay: Vec<u64> = (0..3).map(|_| take_id(&cm)).collect();
        assert_eq!(first, replay);
    }
}
