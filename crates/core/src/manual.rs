//! Hand-built communication schedules.
//!
//! The paper compares its automatic approach against *hand-optimized SPMD
//! codes using application-specific protocols* (Falsafi et al. [5]) — a
//! programmer who knows the communication pattern writes a custom
//! write-update protocol that pushes data straight to its consumers.
//!
//! Our model of that baseline reuses the pre-send machinery with a schedule
//! the *application* installs directly, instead of one recorded from faults:
//! the same data movement a hand-written update protocol performs, without
//! recording overhead. `prescient-apps` uses this for the SPMD Barnes
//! variant of Figure 6.

use prescient_tempest::{BlockId, NodeId, NodeSet};

use crate::predictive::Predictive;
use crate::schedule::PhaseId;

/// One hand-specified schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManualEntry {
    /// Forward read-only copies to these nodes each iteration.
    Readers(NodeSet),
    /// Forward the writable copy to this node each iteration.
    Writer(NodeId),
}

impl Predictive {
    /// Install hand-built entries into `phase`'s schedule at this (home)
    /// node. Entries merge with whatever is already recorded.
    pub fn install_manual(
        &self,
        phase: PhaseId,
        entries: impl IntoIterator<Item = (BlockId, ManualEntry)>,
    ) {
        let mut st = self.state.lock();
        let sched = st.store.phase_mut(phase);
        for (block, entry) in entries {
            match entry {
                ManualEntry::Readers(set) => {
                    for r in set.iter() {
                        sched.record_read(block, r);
                    }
                }
                ManualEntry::Writer(w) => sched.record_write(block, w),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictive::PredictiveConfig;
    use crate::schedule::Action;

    #[test]
    fn manual_entries_install() {
        let p = Predictive::new(PredictiveConfig::default());
        let readers: NodeSet = [1u16, 2].into_iter().collect();
        p.install_manual(
            7,
            vec![
                (BlockId(10), ManualEntry::Readers(readers)),
                (BlockId(11), ManualEntry::Writer(3)),
            ],
        );
        assert_eq!(p.entries(7), 2);
        let st = p.state.lock();
        let sched = st.store.phase(7).unwrap();
        assert_eq!(sched.entries[&BlockId(10)].action(), Action::Read);
        assert_eq!(sched.entries[&BlockId(10)].readers, readers);
        assert_eq!(sched.entries[&BlockId(11)].action(), Action::Write);
        assert_eq!(sched.entries[&BlockId(11)].writer, Some(3));
    }

    #[test]
    fn manual_merges_with_recorded() {
        let p = Predictive::new(PredictiveConfig::default());
        p.install_manual(1, vec![(BlockId(5), ManualEntry::Readers(NodeSet::single(1)))]);
        p.install_manual(1, vec![(BlockId(5), ManualEntry::Readers(NodeSet::single(2)))]);
        let st = p.state.lock();
        assert_eq!(st.store.phase(1).unwrap().entries[&BlockId(5)].readers.len(), 2);
    }
}
