//! Communication schedules (§3.3).
//!
//! A schedule is distributed: each home node stores entries only for its
//! own blocks. Per parallel phase (identified by a compiler-assigned
//! [`PhaseId`]) and per block, the schedule records who read and who wrote,
//! at which phase *instance* (iteration). Entries accumulate across
//! iterations — the incremental growth that lets the protocol track
//! adaptive applications — and are only discarded by an explicit
//! [`ScheduleStore::flush`].

use std::collections::HashMap;

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// Identifies one compiler-marked parallel phase.
pub type PhaseId = u32;

/// The pre-send action recorded for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward read-only copies to the recorded readers.
    Read,
    /// Forward a writable copy to the recorded writer.
    Write,
    /// Read and written within one phase instance (false sharing or task
    /// conflict): the protocol takes no action (§3.4).
    Conflict,
}

/// Schedule entry for one block within one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScheduleEntry {
    /// All nodes that ever read-requested the block in this phase.
    pub readers: NodeSet,
    /// The most recent write-requester, if any.
    pub writer: Option<NodeId>,
    /// Phase instance of the most recent read request.
    pub read_iter: u64,
    /// Phase instance of the most recent write request.
    pub write_iter: u64,
    /// Sticky conflict mark.
    pub conflict: bool,
    /// Was the *first* request of the most recent instance a write? Used
    /// by the optional conflict-anticipation policy (§3.4's "anticipate
    /// the first stable block state before the conflict occurred").
    pub first_was_write: bool,
    /// Instance stamp for `first_was_write`.
    pub first_stamp: u64,
}

impl ScheduleEntry {
    /// The action the pre-send phase will take for this entry (conflicts
    /// get no action, §3.4).
    pub fn action(&self) -> Action {
        self.action_with(false)
    }

    /// Action under an explicit conflict policy. With `anticipate` set,
    /// conflict blocks are pre-sent toward their *first stable state* —
    /// the kind of the first request in the most recent instance — the
    /// optional policy §3.4 sketches; otherwise conflicts get no action.
    pub fn action_with(&self, anticipate: bool) -> Action {
        if self.conflict {
            if !anticipate {
                return Action::Conflict;
            }
            if self.first_was_write && self.writer.is_some() {
                return Action::Write;
            }
            if self.readers.is_empty() {
                // Never read; anticipation degenerates to the writer.
                return if self.writer.is_some() { Action::Write } else { Action::Conflict };
            }
            return Action::Read;
        }
        if self.writer.is_some() && self.write_iter >= self.read_iter {
            Action::Write
        } else {
            Action::Read
        }
    }

    fn stamp_first(&mut self, iter: u64, write: bool) {
        if self.first_stamp != iter {
            self.first_stamp = iter;
            self.first_was_write = write;
        }
    }
}

/// A run of contiguous blocks whose pre-send walk is identical: same
/// action, and — for the fields the walk actually consults — same readers
/// (read runs) or same writer (write runs). Produced by
/// [`PhaseSchedule::replay`]; dense schedules (the common case after a
/// block-distributed aggregate is swept) collapse to a handful of runs,
/// so pre-send pass 1 iterates O(runs) run headers instead of O(blocks)
/// hash-map entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayRun {
    /// First block of the run.
    pub first: BlockId,
    /// Number of consecutive blocks (`first`, `first+1`, …).
    pub len: u64,
    /// The action every block in the run takes.
    pub action: Action,
    /// Recorded readers (normalized to empty unless `action` is `Read`).
    pub readers: NodeSet,
    /// Recorded writer (normalized to `None` unless `action` is `Write`).
    pub writer: Option<NodeId>,
}

impl ReplayRun {
    /// The blocks of the run, ascending.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.len).map(|i| BlockId(self.first.0 + i))
    }
}

/// One phase's schedule at one home node.
#[derive(Debug, Clone, Default)]
pub struct PhaseSchedule {
    /// Recorded entries, by block.
    pub entries: HashMap<BlockId, ScheduleEntry>,
    /// Current phase instance, advanced by each `presend_and_arm`.
    pub cur_iter: u64,
    /// Total record events (diagnostics).
    pub records: u64,
}

impl PhaseSchedule {
    /// Record a read request for `block` from `requester`.
    pub fn record_read(&mut self, block: BlockId, requester: NodeId) {
        let it = self.cur_iter;
        let e = self.entries.entry(block).or_default();
        e.stamp_first(it, false);
        e.readers.insert(requester);
        e.read_iter = it;
        if e.write_iter == it && e.writer.is_some() {
            e.conflict = true;
        }
        self.records += 1;
    }

    /// Record a write request for `block` from `requester`.
    pub fn record_write(&mut self, block: BlockId, requester: NodeId) {
        let it = self.cur_iter;
        let e = self.entries.entry(block).or_default();
        e.stamp_first(it, true);
        e.writer = Some(requester);
        e.write_iter = it;
        if e.read_iter == it && !e.readers.is_empty() {
            e.conflict = true;
        }
        self.records += 1;
    }

    /// Entries in ascending block order — the order the pre-send walk uses
    /// so that neighboring blocks coalesce (§3.4).
    pub fn sorted_entries(&self) -> Vec<(BlockId, ScheduleEntry)> {
        let mut v: Vec<_> = self.entries.iter().map(|(b, e)| (*b, *e)).collect();
        v.sort_unstable_by_key(|(b, _)| *b);
        v
    }

    /// The pre-send walk, run-length-encoded: entries in ascending block
    /// order, with contiguous blocks merged into one [`ReplayRun`] when
    /// they take the same action toward the same targets. Expanding the
    /// runs block-by-block reproduces exactly what walking
    /// [`PhaseSchedule::sorted_entries`] under
    /// [`ScheduleEntry::action_with`] would do: only the fields the walk
    /// consults are compared (readers for read runs, writer for write
    /// runs; conflict runs always merge since they carry no targets).
    pub fn replay(&self, anticipate: bool) -> Vec<ReplayRun> {
        let mut keys: Vec<BlockId> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let mut runs: Vec<ReplayRun> = Vec::new();
        for b in keys {
            let e = &self.entries[&b];
            let action = e.action_with(anticipate);
            let readers = if action == Action::Read { e.readers } else { NodeSet::EMPTY };
            let writer = if action == Action::Write { e.writer } else { None };
            if let Some(last) = runs.last_mut() {
                if last.first.0 + last.len == b.0
                    && last.action == action
                    && last.readers == readers
                    && last.writer == writer
                {
                    last.len += 1;
                    continue;
                }
            }
            runs.push(ReplayRun { first: b, len: 1, action, readers, writer });
        }
        runs
    }

    /// Number of conflict-marked entries.
    pub fn conflicts(&self) -> usize {
        self.entries.values().filter(|e| e.conflict).count()
    }
}

/// All phases' schedules at one home node.
#[derive(Debug, Clone, Default)]
pub struct ScheduleStore {
    phases: HashMap<PhaseId, PhaseSchedule>,
}

impl ScheduleStore {
    /// Access (creating on demand) the schedule of `phase`.
    pub fn phase_mut(&mut self, phase: PhaseId) -> &mut PhaseSchedule {
        self.phases.entry(phase).or_default()
    }

    /// Read-only view, if the phase has ever recorded anything.
    pub fn phase(&self, phase: PhaseId) -> Option<&PhaseSchedule> {
        self.phases.get(&phase)
    }

    /// Discard a phase's schedule so it is rebuilt from scratch — the
    /// paper's answer to communication patterns with many deletions
    /// (§3.3).
    pub fn flush(&mut self, phase: PhaseId) {
        self.phases.remove(&phase);
    }

    /// Total entries across all phases (diagnostics).
    pub fn total_entries(&self) -> usize {
        self.phases.values().map(|p| p.entries.len()).sum()
    }

    /// Phase ids with recorded schedules, ascending.
    pub fn phase_ids(&self) -> Vec<PhaseId> {
        let mut v: Vec<PhaseId> = self.phases.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Export every phase's entries in a stable order — the schedule
    /// export hook the static↔dynamic oracle folds back onto the
    /// compiler's summaries.
    pub fn export(&self) -> Vec<(PhaseId, Vec<(BlockId, ScheduleEntry)>)> {
        self.phase_ids()
            .into_iter()
            .filter_map(|id| self.phases.get(&id).map(|p| (id, p.sorted_entries())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    const B: BlockId = BlockId(42);

    #[test]
    fn read_entry_accumulates_readers() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 3);
        p.record_read(B, 5);
        let e = p.entries[&B];
        assert_eq!(e.readers.len(), 2);
        assert_eq!(e.action(), Action::Read);
        assert!(!e.conflict);
    }

    #[test]
    fn write_entry() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 7);
        assert_eq!(p.entries[&B].action(), Action::Write);
        assert_eq!(p.entries[&B].writer, Some(7));
    }

    #[test]
    fn same_iteration_read_write_conflicts() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 4;
        p.record_read(B, 1);
        p.record_write(B, 2);
        assert!(p.entries[&B].conflict);
        assert_eq!(p.entries[&B].action(), Action::Conflict);
    }

    #[test]
    fn cross_iteration_read_write_is_not_conflict() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 2);
        p.cur_iter = 2;
        p.record_read(B, 1);
        let e = p.entries[&B];
        assert!(!e.conflict);
        // Read is more recent: pre-send forwards read-only copies.
        assert_eq!(e.action(), Action::Read);
    }

    #[test]
    fn most_recent_kind_wins() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.cur_iter = 2;
        p.record_write(B, 3);
        assert_eq!(p.entries[&B].action(), Action::Write);
    }

    #[test]
    fn sorted_walk_order() {
        let mut p = PhaseSchedule::default();
        p.record_read(BlockId(9), 0);
        p.record_read(BlockId(2), 0);
        p.record_read(BlockId(5), 0);
        let order: Vec<u64> = p.sorted_entries().iter().map(|(b, _)| b.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn flush_discards() {
        let mut s = ScheduleStore::default();
        s.phase_mut(1).record_read(B, 0);
        s.phase_mut(2).record_read(B, 0);
        assert_eq!(s.total_entries(), 2);
        s.flush(1);
        assert!(s.phase(1).is_none());
        assert_eq!(s.total_entries(), 1);
    }

    #[test]
    fn export_is_phase_then_block_ordered() {
        let mut s = ScheduleStore::default();
        s.phase_mut(2).record_read(BlockId(9), 0);
        s.phase_mut(2).record_read(BlockId(2), 1);
        s.phase_mut(1).record_write(B, 3);
        let ex = s.export();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].0, 1);
        assert_eq!(ex[1].0, 2);
        let blocks: Vec<u64> = ex[1].1.iter().map(|(b, _)| b.0).collect();
        assert_eq!(blocks, vec![2, 9]);
    }

    #[test]
    fn anticipation_uses_first_stable_state() {
        // write-then-read conflict: anticipation grants toward the writer.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 2);
        p.record_read(B, 1);
        let e = p.entries[&B];
        assert_eq!(e.action(), Action::Conflict, "default policy skips");
        assert_eq!(e.action_with(true), Action::Write, "first state was the writer's");

        // read-then-write conflict: anticipation forwards to the readers.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.record_write(B, 2);
        let e = p.entries[&B];
        assert_eq!(e.action_with(true), Action::Read);
    }

    #[test]
    fn anticipation_tracks_most_recent_instance() {
        // Iteration 1: read first; iteration 2: write first. The most
        // recent instance decides.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.record_write(B, 2);
        p.cur_iter = 2;
        p.record_write(B, 2);
        p.record_read(B, 1);
        assert_eq!(p.entries[&B].action_with(true), Action::Write);
    }

    /// Expand a replay into per-block (action, readers, writer) tuples,
    /// normalized the way the pre-send walk consumes them.
    fn expand(runs: &[ReplayRun]) -> Vec<(u64, Action, NodeSet, Option<NodeId>)> {
        runs.iter()
            .flat_map(|r| r.blocks().map(move |b| (b.0, r.action, r.readers, r.writer)))
            .collect()
    }

    /// The uncompacted reference: walk `sorted_entries` and normalize.
    fn reference(
        p: &PhaseSchedule,
        anticipate: bool,
    ) -> Vec<(u64, Action, NodeSet, Option<NodeId>)> {
        p.sorted_entries()
            .into_iter()
            .map(|(b, e)| {
                let action = e.action_with(anticipate);
                let readers = if action == Action::Read { e.readers } else { NodeSet::EMPTY };
                let writer = if action == Action::Write { e.writer } else { None };
                (b.0, action, readers, writer)
            })
            .collect()
    }

    #[test]
    fn replay_collapses_dense_read_sweep() {
        // The common case: one consumer read every block of a contiguous
        // slice — the whole slice is a single run.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        for b in 100..200 {
            p.record_read(BlockId(b), 7);
        }
        let runs = p.replay(false);
        assert_eq!(runs.len(), 1);
        assert_eq!((runs[0].first, runs[0].len), (BlockId(100), 100));
        assert_eq!(runs[0].action, Action::Read);
        assert_eq!(expand(&runs), reference(&p, false));
    }

    #[test]
    fn replay_breaks_on_gap_target_and_action() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(BlockId(10), 1);
        p.record_read(BlockId(11), 1);
        p.record_read(BlockId(12), 2); // different reader set
        p.record_write(BlockId(13), 3); // different action
        p.record_read(BlockId(20), 1); // gap
        let runs = p.replay(false);
        assert_eq!(runs.len(), 4);
        assert_eq!(expand(&runs), reference(&p, false));
    }

    #[test]
    fn replay_merges_conflicts_regardless_of_targets() {
        // Conflict runs carry no targets, so differing readers/writers
        // must not break them.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        for b in 0..10u64 {
            p.record_read(BlockId(b), (b % 3) as NodeId);
            p.record_write(BlockId(b), ((b + 1) % 3) as NodeId);
        }
        let runs = p.replay(false);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].action, Action::Conflict);
        assert_eq!(expand(&runs), reference(&p, false));
    }

    #[test]
    fn replay_equivalence_on_pseudo_random_schedules() {
        // Fuzz-style equivalence against the uncompacted walk, for both
        // conflict policies (a compiled twin of the proptest suite).
        use prescient_tempest::SplitMix64;
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0x5EED ^ seed);
            let mut p = PhaseSchedule::default();
            for iter in 1..=3u64 {
                p.cur_iter = iter;
                for _ in 0..200 {
                    let b = BlockId(rng.next_u64() % 96);
                    let node = (rng.next_u64() % 5) as NodeId;
                    if rng.next_u64().is_multiple_of(3) {
                        p.record_write(b, node);
                    } else {
                        p.record_read(b, node);
                    }
                }
            }
            for anticipate in [false, true] {
                let runs = p.replay(anticipate);
                assert_eq!(
                    expand(&runs),
                    reference(&p, anticipate),
                    "seed {seed} anticipate {anticipate}"
                );
                // RLE must actually compress a 96-block dense-ish space.
                assert!(runs.len() <= p.entries.len());
                for w in runs.windows(2) {
                    let merged = w[0].first.0 + w[0].len == w[1].first.0
                        && w[0].action == w[1].action
                        && w[0].readers == w[1].readers
                        && w[0].writer == w[1].writer;
                    assert!(!merged, "adjacent runs should have been merged: {w:?}");
                }
            }
        }
    }

    #[test]
    fn incremental_growth() {
        // New requests in later iterations extend, never replace.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.cur_iter = 2;
        p.record_read(B, 2);
        p.record_read(BlockId(43), 4);
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.entries[&B].readers.len(), 2, "old readers retained (no deletions)");
    }
}
