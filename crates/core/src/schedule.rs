//! Communication schedules (§3.3).
//!
//! A schedule is distributed: each home node stores entries only for its
//! own blocks. Per parallel phase (identified by a compiler-assigned
//! [`PhaseId`]) and per block, the schedule records who read and who wrote,
//! at which phase *instance* (iteration). Entries accumulate across
//! iterations — the incremental growth that lets the protocol track
//! adaptive applications — and are only discarded by an explicit
//! [`ScheduleStore::flush`].

use std::collections::HashMap;

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// Identifies one compiler-marked parallel phase.
pub type PhaseId = u32;

/// The pre-send action recorded for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward read-only copies to the recorded readers.
    Read,
    /// Forward a writable copy to the recorded writer.
    Write,
    /// Read and written within one phase instance (false sharing or task
    /// conflict): the protocol takes no action (§3.4).
    Conflict,
}

/// Schedule entry for one block within one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScheduleEntry {
    /// All nodes that ever read-requested the block in this phase.
    pub readers: NodeSet,
    /// The most recent write-requester, if any.
    pub writer: Option<NodeId>,
    /// Phase instance of the most recent read request.
    pub read_iter: u64,
    /// Phase instance of the most recent write request.
    pub write_iter: u64,
    /// Sticky conflict mark.
    pub conflict: bool,
    /// Was the *first* request of the most recent instance a write? Used
    /// by the optional conflict-anticipation policy (§3.4's "anticipate
    /// the first stable block state before the conflict occurred").
    pub first_was_write: bool,
    /// Instance stamp for `first_was_write`.
    pub first_stamp: u64,
}

impl ScheduleEntry {
    /// The action the pre-send phase will take for this entry (conflicts
    /// get no action, §3.4).
    pub fn action(&self) -> Action {
        self.action_with(false)
    }

    /// Action under an explicit conflict policy. With `anticipate` set,
    /// conflict blocks are pre-sent toward their *first stable state* —
    /// the kind of the first request in the most recent instance — the
    /// optional policy §3.4 sketches; otherwise conflicts get no action.
    pub fn action_with(&self, anticipate: bool) -> Action {
        if self.conflict {
            if !anticipate {
                return Action::Conflict;
            }
            if self.first_was_write && self.writer.is_some() {
                return Action::Write;
            }
            if self.readers.is_empty() {
                // Never read; anticipation degenerates to the writer.
                return if self.writer.is_some() { Action::Write } else { Action::Conflict };
            }
            return Action::Read;
        }
        if self.writer.is_some() && self.write_iter >= self.read_iter {
            Action::Write
        } else {
            Action::Read
        }
    }

    fn stamp_first(&mut self, iter: u64, write: bool) {
        if self.first_stamp != iter {
            self.first_stamp = iter;
            self.first_was_write = write;
        }
    }
}

/// One phase's schedule at one home node.
#[derive(Debug, Default)]
pub struct PhaseSchedule {
    /// Recorded entries, by block.
    pub entries: HashMap<BlockId, ScheduleEntry>,
    /// Current phase instance, advanced by each `presend_and_arm`.
    pub cur_iter: u64,
    /// Total record events (diagnostics).
    pub records: u64,
}

impl PhaseSchedule {
    /// Record a read request for `block` from `requester`.
    pub fn record_read(&mut self, block: BlockId, requester: NodeId) {
        let it = self.cur_iter;
        let e = self.entries.entry(block).or_default();
        e.stamp_first(it, false);
        e.readers.insert(requester);
        e.read_iter = it;
        if e.write_iter == it && e.writer.is_some() {
            e.conflict = true;
        }
        self.records += 1;
    }

    /// Record a write request for `block` from `requester`.
    pub fn record_write(&mut self, block: BlockId, requester: NodeId) {
        let it = self.cur_iter;
        let e = self.entries.entry(block).or_default();
        e.stamp_first(it, true);
        e.writer = Some(requester);
        e.write_iter = it;
        if e.read_iter == it && !e.readers.is_empty() {
            e.conflict = true;
        }
        self.records += 1;
    }

    /// Entries in ascending block order — the order the pre-send walk uses
    /// so that neighboring blocks coalesce (§3.4).
    pub fn sorted_entries(&self) -> Vec<(BlockId, ScheduleEntry)> {
        let mut v: Vec<_> = self.entries.iter().map(|(b, e)| (*b, *e)).collect();
        v.sort_unstable_by_key(|(b, _)| *b);
        v
    }

    /// Number of conflict-marked entries.
    pub fn conflicts(&self) -> usize {
        self.entries.values().filter(|e| e.conflict).count()
    }
}

/// All phases' schedules at one home node.
#[derive(Debug, Default)]
pub struct ScheduleStore {
    phases: HashMap<PhaseId, PhaseSchedule>,
}

impl ScheduleStore {
    /// Access (creating on demand) the schedule of `phase`.
    pub fn phase_mut(&mut self, phase: PhaseId) -> &mut PhaseSchedule {
        self.phases.entry(phase).or_default()
    }

    /// Read-only view, if the phase has ever recorded anything.
    pub fn phase(&self, phase: PhaseId) -> Option<&PhaseSchedule> {
        self.phases.get(&phase)
    }

    /// Discard a phase's schedule so it is rebuilt from scratch — the
    /// paper's answer to communication patterns with many deletions
    /// (§3.3).
    pub fn flush(&mut self, phase: PhaseId) {
        self.phases.remove(&phase);
    }

    /// Total entries across all phases (diagnostics).
    pub fn total_entries(&self) -> usize {
        self.phases.values().map(|p| p.entries.len()).sum()
    }

    /// Phase ids with recorded schedules, ascending.
    pub fn phase_ids(&self) -> Vec<PhaseId> {
        let mut v: Vec<PhaseId> = self.phases.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Export every phase's entries in a stable order — the schedule
    /// export hook the static↔dynamic oracle folds back onto the
    /// compiler's summaries.
    pub fn export(&self) -> Vec<(PhaseId, Vec<(BlockId, ScheduleEntry)>)> {
        self.phase_ids()
            .into_iter()
            .filter_map(|id| self.phases.get(&id).map(|p| (id, p.sorted_entries())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    const B: BlockId = BlockId(42);

    #[test]
    fn read_entry_accumulates_readers() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 3);
        p.record_read(B, 5);
        let e = p.entries[&B];
        assert_eq!(e.readers.len(), 2);
        assert_eq!(e.action(), Action::Read);
        assert!(!e.conflict);
    }

    #[test]
    fn write_entry() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 7);
        assert_eq!(p.entries[&B].action(), Action::Write);
        assert_eq!(p.entries[&B].writer, Some(7));
    }

    #[test]
    fn same_iteration_read_write_conflicts() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 4;
        p.record_read(B, 1);
        p.record_write(B, 2);
        assert!(p.entries[&B].conflict);
        assert_eq!(p.entries[&B].action(), Action::Conflict);
    }

    #[test]
    fn cross_iteration_read_write_is_not_conflict() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 2);
        p.cur_iter = 2;
        p.record_read(B, 1);
        let e = p.entries[&B];
        assert!(!e.conflict);
        // Read is more recent: pre-send forwards read-only copies.
        assert_eq!(e.action(), Action::Read);
    }

    #[test]
    fn most_recent_kind_wins() {
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.cur_iter = 2;
        p.record_write(B, 3);
        assert_eq!(p.entries[&B].action(), Action::Write);
    }

    #[test]
    fn sorted_walk_order() {
        let mut p = PhaseSchedule::default();
        p.record_read(BlockId(9), 0);
        p.record_read(BlockId(2), 0);
        p.record_read(BlockId(5), 0);
        let order: Vec<u64> = p.sorted_entries().iter().map(|(b, _)| b.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn flush_discards() {
        let mut s = ScheduleStore::default();
        s.phase_mut(1).record_read(B, 0);
        s.phase_mut(2).record_read(B, 0);
        assert_eq!(s.total_entries(), 2);
        s.flush(1);
        assert!(s.phase(1).is_none());
        assert_eq!(s.total_entries(), 1);
    }

    #[test]
    fn export_is_phase_then_block_ordered() {
        let mut s = ScheduleStore::default();
        s.phase_mut(2).record_read(BlockId(9), 0);
        s.phase_mut(2).record_read(BlockId(2), 1);
        s.phase_mut(1).record_write(B, 3);
        let ex = s.export();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].0, 1);
        assert_eq!(ex[1].0, 2);
        let blocks: Vec<u64> = ex[1].1.iter().map(|(b, _)| b.0).collect();
        assert_eq!(blocks, vec![2, 9]);
    }

    #[test]
    fn anticipation_uses_first_stable_state() {
        // write-then-read conflict: anticipation grants toward the writer.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_write(B, 2);
        p.record_read(B, 1);
        let e = p.entries[&B];
        assert_eq!(e.action(), Action::Conflict, "default policy skips");
        assert_eq!(e.action_with(true), Action::Write, "first state was the writer's");

        // read-then-write conflict: anticipation forwards to the readers.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.record_write(B, 2);
        let e = p.entries[&B];
        assert_eq!(e.action_with(true), Action::Read);
    }

    #[test]
    fn anticipation_tracks_most_recent_instance() {
        // Iteration 1: read first; iteration 2: write first. The most
        // recent instance decides.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.record_write(B, 2);
        p.cur_iter = 2;
        p.record_write(B, 2);
        p.record_read(B, 1);
        assert_eq!(p.entries[&B].action_with(true), Action::Write);
    }

    #[test]
    fn incremental_growth() {
        // New requests in later iterations extend, never replace.
        let mut p = PhaseSchedule::default();
        p.cur_iter = 1;
        p.record_read(B, 1);
        p.cur_iter = 2;
        p.record_read(B, 2);
        p.record_read(BlockId(43), 4);
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.entries[&B].readers.len(), 2, "old readers retained (no deletions)");
    }
}
