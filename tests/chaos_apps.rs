//! Application-level chaos: the three mini-apps run to completion on an
//! 8-node machine whose fabric delays, duplicates, and drops messages
//! (fixed seed, FIFO-preserving), with the whole-machine coherence check
//! asserted at teardown (`validated()`), and produce checksums bit-equal
//! to the fault-free run — the protocol's retry/dedup machinery makes the
//! faults invisible to the application.

use std::time::Duration;

use prescient::apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient::apps::barnes::{run_barnes, BarnesConfig};
use prescient::apps::water::{run_water, WaterConfig};
use prescient::runtime::MachineConfig;
use prescient::stache::RetryConfig;
use prescient::tempest::{BatchConfig, FaultPlan};

const NODES: usize = 8;
const SEED: u64 = 0xC0FFEE;

/// Chaos machine: delay + duplication + drops, short retry timeout, and
/// the coherence invariants checked after the run.
fn chaos(block: usize) -> MachineConfig {
    MachineConfig::predictive(NODES, block)
        .with_faults(FaultPlan::chaos(SEED))
        .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 })
        .validated()
}

fn clean(block: usize) -> MachineConfig {
    MachineConfig::predictive(NODES, block).validated()
}

/// Total blocks moved over the fabric: demand misses plus pre-sent blocks
/// (the paper's "amount of data moved"). Pinned equal between clean and
/// fault-free-equivalent runs on the *clean* side of each pair below: the
/// zero-copy send path and the flat arena must not change what moves, only
/// how it is stored and cloned.
fn blocks_moved(run: &prescient::apps::AppRun) -> u64 {
    let t = run.report.total_stats();
    t.misses() + t.presend_blocks_out
}

#[test]
fn water_is_bit_identical_under_chaos() {
    let cfg = WaterConfig { n: 48, steps: 3, ..Default::default() };
    let a = run_water(clean(32), &cfg);
    let b = run_water(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change water's results");
    // The clean run's traffic is deterministic: re-running it must move
    // exactly the same blocks (the chaos run legitimately retries more).
    let a2 = run_water(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean water traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean water reruns must be bit-identical");
}

#[test]
fn barnes_is_bit_identical_under_chaos() {
    let cfg = BarnesConfig { n: 128, steps: 2, ..Default::default() };
    let a = run_barnes(clean(32), &cfg);
    let b = run_barnes(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change barnes' results");
    let a2 = run_barnes(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean barnes traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean barnes reruns must be bit-identical");
}

/// Egress batching must be invisible to applications: the same program on
/// the same machine, with aggregation forced off (`max_batch = 1`, the
/// pre-batching wire behavior) and forced on (64), produces bit-identical
/// results — under chaos too, because the fault layer decides fates
/// per-envelope per-link regardless of how sends pack into wire batches.
/// On the clean pairs the logical traffic (blocks moved) is also pinned
/// equal; chaos runs legitimately retry different amounts.
#[test]
fn water_is_bit_identical_with_batching_on_and_off() {
    let cfg = WaterConfig { n: 48, steps: 3, ..Default::default() };
    let off = run_water(clean(32).with_batch(BatchConfig::off()), &cfg);
    let on = run_water(clean(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(off.checksum, on.checksum, "batching must not change water's results");
    assert_eq!(blocks_moved(&off), blocks_moved(&on), "batching must not change water traffic");
    let c_off = run_water(chaos(32).with_batch(BatchConfig::off()), &cfg);
    let c_on = run_water(chaos(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(c_off.checksum, c_on.checksum, "batching must not change chaos water results");
    assert_eq!(off.checksum, c_on.checksum, "chaos + batching must match the clean run");
}

#[test]
fn barnes_is_bit_identical_with_batching_on_and_off() {
    let cfg = BarnesConfig { n: 128, steps: 2, ..Default::default() };
    let off = run_barnes(clean(32).with_batch(BatchConfig::off()), &cfg);
    let on = run_barnes(clean(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(off.checksum, on.checksum, "batching must not change barnes' results");
    assert_eq!(blocks_moved(&off), blocks_moved(&on), "batching must not change barnes traffic");
    let c_on = run_barnes(chaos(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(off.checksum, c_on.checksum, "chaos + batching must match the clean run");
}

#[test]
fn adaptive_is_bit_identical_with_batching_on_and_off() {
    let cfg = AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None };
    let (off, r_off, d_off) = run_adaptive_full(clean(32).with_batch(BatchConfig::off()), &cfg);
    let (on, r_on, d_on) = run_adaptive_full(clean(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(off.checksum, on.checksum, "batching must not change adaptive's results");
    assert_eq!((r_off, d_off), (r_on, d_on), "refinement must match element-wise");
    assert_eq!(blocks_moved(&off), blocks_moved(&on), "batching must not change adaptive traffic");
    let (c_on, ..) = run_adaptive_full(chaos(32).with_batch(BatchConfig::new(64)), &cfg);
    assert_eq!(off.checksum, c_on.checksum, "chaos + batching must match the clean run");
}

#[test]
fn adaptive_is_bit_identical_under_chaos() {
    let cfg = AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None };
    let (a, ra, da) = run_adaptive_full(clean(32), &cfg);
    let (b, rb, db) = run_adaptive_full(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change adaptive's results");
    assert_eq!(ra, rb, "refined roots must match element-wise");
    assert_eq!(da, db, "refinement depths must match element-wise");
    let (a2, _, _) = run_adaptive_full(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean adaptive traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean adaptive reruns must be bit-identical");
}
