//! Application-level chaos: the three mini-apps run to completion on an
//! 8-node machine whose fabric delays, duplicates, and drops messages
//! (fixed seed, FIFO-preserving), with the whole-machine coherence check
//! asserted at teardown (`validated()`), and produce checksums bit-equal
//! to the fault-free run — the protocol's retry/dedup machinery makes the
//! faults invisible to the application.

use std::time::Duration;

use prescient::apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient::apps::barnes::{run_barnes, BarnesConfig};
use prescient::apps::water::{run_water, WaterConfig};
use prescient::runtime::MachineConfig;
use prescient::stache::RetryConfig;
use prescient::tempest::FaultPlan;

const NODES: usize = 8;
const SEED: u64 = 0xC0FFEE;

/// Chaos machine: delay + duplication + drops, short retry timeout, and
/// the coherence invariants checked after the run.
fn chaos(block: usize) -> MachineConfig {
    MachineConfig::predictive(NODES, block)
        .with_faults(FaultPlan::chaos(SEED))
        .with_retry(RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 })
        .validated()
}

fn clean(block: usize) -> MachineConfig {
    MachineConfig::predictive(NODES, block).validated()
}

/// Total blocks moved over the fabric: demand misses plus pre-sent blocks
/// (the paper's "amount of data moved"). Pinned equal between clean and
/// fault-free-equivalent runs on the *clean* side of each pair below: the
/// zero-copy send path and the flat arena must not change what moves, only
/// how it is stored and cloned.
fn blocks_moved(run: &prescient::apps::AppRun) -> u64 {
    let t = run.report.total_stats();
    t.misses() + t.presend_blocks_out
}

#[test]
fn water_is_bit_identical_under_chaos() {
    let cfg = WaterConfig { n: 48, steps: 3, ..Default::default() };
    let a = run_water(clean(32), &cfg);
    let b = run_water(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change water's results");
    // The clean run's traffic is deterministic: re-running it must move
    // exactly the same blocks (the chaos run legitimately retries more).
    let a2 = run_water(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean water traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean water reruns must be bit-identical");
}

#[test]
fn barnes_is_bit_identical_under_chaos() {
    let cfg = BarnesConfig { n: 128, steps: 2, ..Default::default() };
    let a = run_barnes(clean(32), &cfg);
    let b = run_barnes(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change barnes' results");
    let a2 = run_barnes(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean barnes traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean barnes reruns must be bit-identical");
}

#[test]
fn adaptive_is_bit_identical_under_chaos() {
    let cfg = AdaptiveConfig { n: 12, iters: 4, tau: 0.4, max_depth: 2, flush_every: None };
    let (a, ra, da) = run_adaptive_full(clean(32), &cfg);
    let (b, rb, db) = run_adaptive_full(chaos(32), &cfg);
    assert_eq!(a.checksum, b.checksum, "chaos must not change adaptive's results");
    assert_eq!(ra, rb, "refined roots must match element-wise");
    assert_eq!(da, db, "refinement depths must match element-wise");
    let (a2, _, _) = run_adaptive_full(clean(32), &cfg);
    assert_eq!(blocks_moved(&a), blocks_moved(&a2), "clean adaptive traffic must be deterministic");
    assert_eq!(a.checksum, a2.checksum, "clean adaptive reruns must be bit-identical");
}
