//! Cross-crate integration tests asserting the paper's headline claims at
//! test scale — the same checks EXPERIMENTS.md records at figure scale.

use prescient::apps::adaptive::{run_adaptive_full, AdaptiveConfig};
use prescient::apps::barnes::{run_barnes, BarnesConfig};
use prescient::apps::water::{run_water, WaterConfig};
use prescient::cstar::compile::compile;
use prescient::runtime::MachineConfig;

const NODES: usize = 4;

/// Abstract: "a predictive protocol increases the number of shared-data
/// requests satisfied locally, thus reducing the remote data access
/// latency" — on all three applications.
#[test]
fn predictive_raises_local_fraction_on_all_three_apps() {
    let wcfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    let bcfg = BarnesConfig { n: 192, steps: 2, ..Default::default() };
    let acfg = AdaptiveConfig { n: 12, iters: 5, tau: 0.4, max_depth: 2, flush_every: None };

    let pairs = [
        (
            "water",
            run_water(MachineConfig::stache(NODES, 32), &wcfg).report,
            run_water(MachineConfig::predictive(NODES, 32), &wcfg).report,
        ),
        (
            "barnes",
            run_barnes(MachineConfig::stache(NODES, 32), &bcfg).report,
            run_barnes(MachineConfig::predictive(NODES, 32), &bcfg).report,
        ),
        (
            "adaptive",
            run_adaptive_full(MachineConfig::stache(NODES, 32), &acfg).0.report,
            run_adaptive_full(MachineConfig::predictive(NODES, 32), &acfg).0.report,
        ),
    ];

    for (app, unopt, opt) in pairs {
        assert!(
            opt.local_fraction() > unopt.local_fraction(),
            "{app}: local fraction must rise ({} vs {})",
            opt.local_fraction(),
            unopt.local_fraction()
        );
        assert!(
            opt.mean_breakdown().wait_ns < unopt.mean_breakdown().wait_ns,
            "{app}: remote wait must drop"
        );
    }
}

/// §5.4: the predictive protocol works best at small blocks; larger blocks
/// help the unoptimized program (spatial locality).
#[test]
fn block_size_tradeoff_shape() {
    let bcfg = BarnesConfig { n: 256, steps: 2, ..Default::default() };
    let unopt_32 = run_barnes(MachineConfig::stache(NODES, 32), &bcfg).report;
    let unopt_512 = run_barnes(MachineConfig::stache(NODES, 512), &bcfg).report;
    // Spatial locality: big blocks slash unoptimized misses.
    assert!(
        unopt_512.total_stats().misses() < unopt_32.total_stats().misses() / 2,
        "{} vs {}",
        unopt_512.total_stats().misses(),
        unopt_32.total_stats().misses()
    );
    // And the pre-send advantage (relative wait reduction) is largest at
    // small blocks.
    let opt_32 = run_barnes(MachineConfig::predictive(NODES, 32), &bcfg).report;
    let saved_32 =
        unopt_32.mean_breakdown().wait_ns as f64 - opt_32.mean_breakdown().wait_ns as f64;
    assert!(saved_32 > 0.0);
}

/// §4: the compiler, not the programmer, places the directives — and the
/// placement is what drives the protocol. A program whose phases are all
/// home-only gets no directives and no pre-sends.
#[test]
fn compiler_places_directives_only_where_needed() {
    let comm = compile(
        r#"
        aggregate A[32] of float;
        aggregate B[32] of float;
        parallel fn gather(a, b) { a[#0] = a[#0] + b[31 - #0]; }
        fn main() { for t in 0 .. 4 { gather(A, B); } }
        "#,
    )
    .unwrap();
    assert_eq!(comm.plan.assignment.n_phases, 1);

    let local = compile(
        r#"
        aggregate A[32] of float;
        parallel fn scale(a) { a[#0] = a[#0] * 2.0; }
        fn main() { for t in 0 .. 4 { scale(A); } }
        "#,
    )
    .unwrap();
    assert_eq!(local.plan.assignment.n_phases, 0);
}

/// End-to-end reproducibility of a figure-style run.
///
/// Application *results* are bit-deterministic (reductions sum in node
/// order; the protocol keeps sequential consistency regardless of message
/// interleaving). Virtual time and the miss/pre-send split are not:
/// concurrent requests race to their home node, and which one is processed
/// first — or whether a block arrives by pre-send before or after the
/// consumer faults on it — depends on OS scheduling. What *is* invariant
/// is the total data movement (a block reaches its consumer either by
/// pre-send or by miss) and the execution time up to the jitter those
/// races introduce. This test pins exactly those invariants; asserting
/// bit-identical virtual time was a long-standing flake.
#[test]
fn figure_runs_are_deterministic() {
    let wcfg = WaterConfig { n: 64, steps: 3, ..Default::default() };
    let a = run_water(MachineConfig::predictive(NODES, 32), &wcfg);
    let b = run_water(MachineConfig::predictive(NODES, 32), &wcfg);
    assert_eq!(a.checksum, b.checksum, "results must be bit-identical");

    let (sa, sb) = (a.report.total_stats(), b.report.total_stats());
    let moved = |s: &prescient::tempest::stats::StatsSnapshot| s.misses() + s.presend_blocks_out;
    assert_eq!(moved(&sa), moved(&sb), "total blocks moved (miss + pre-send) must match");

    let (ta, tb) = (a.report.exec_time_ns() as f64, b.report.exec_time_ns() as f64);
    let rel = (ta - tb).abs() / ta.max(tb);
    assert!(rel < 0.10, "virtual times diverged by {:.1}% ({} vs {})", rel * 100.0, ta, tb);
}

/// The pre-send phase never leaves protocol state inconsistent: no
/// "presend race" diagnostics fire, and every pre-sent block is a block
/// some node later finds locally.
#[test]
fn presend_is_race_free() {
    let acfg = AdaptiveConfig { n: 12, iters: 6, tau: 0.4, max_depth: 2, flush_every: None };
    let (run, _, _) = run_adaptive_full(MachineConfig::predictive(NODES, 32), &acfg);
    assert_eq!(run.report.total_stats().presend_races, 0);
    assert!(run.report.total_stats().presend_blocks_out > 0);
}
